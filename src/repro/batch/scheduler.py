"""Batch scheduler: many alignment requests, one set of workers.

A serving stack does not treat each request as a cold start. This
scheduler accepts a whole batch of :class:`AlignmentRequest`\\ s and
serves it in stages, cheapest first:

1. **Exact dedup** — requests are grouped by their content digest
   (:func:`repro.cache.request_key`, keyed on the *resolved* method's
   equivalence class, so ``auto`` and ``wavefront`` requests for the
   same triple form one group); each distinct request is looked up in
   the :class:`~repro.cache.ResultCache` once (with a migration probe
   of the legacy raw-method key), and duplicates share the answer.
2. **Permutation reuse** — remaining groups are probed by the
   order-insensitive secondary key. A hit (from the cache, or from
   another group of this batch) is mapped onto the request's sequence
   order by permuting rows: score-identical by the symmetry of SP
   scoring, though tie-breaking means the rows may legitimately differ
   from a cold compute (marked ``meta["permuted_from"]``).
3. **Grouped compute** — true misses are grouped by cube shape and run
   largest-first over one long-lived :class:`WavefrontPool` sized to the
   batch (pool-eligible jobs: global mode, linear scheme, *resolved*
   wavefront-class method), so worker spawn is paid once per pool
   lifetime instead of once per request. Everything else — affine
   schemes, explicit serial engines, local/semiglobal modes, and
   requests the similarity cost model routes to ``pruned``/``banded``/
   ``hirschberg`` — dispatches to the matching engine per request.
   Results are cached under both keys for the next batch.

The pool outlives ``run()``: a :class:`BatchScheduler` reuses its workers
across batches (growing capacity on demand) until :meth:`close`.
Metrics land in :mod:`repro.obs` — cache hit/miss counters, a
per-request latency histogram, the batch dedup ratio and the estimated
pool-reuse savings — and render via ``repro report`` / ``--metrics``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from repro.cache import (
    ResultCache,
    derive_for_order,
    method_key_class,
    permutation_key,
    permute_rows,
    request_key,
)
from repro.cache.key import MODES, canonical_order
from repro.core.api import (
    AVAILABLE_METHODS,
    AUTO_POLICIES,
    align3,
    resolve_scheme,
    select_method,
)
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.util.validation import check_sequences

#: *Resolved* methods the long-lived pool serves (its workers run the
#: shared wavefront kernel, which reproduces these bit-identically).
#: ``auto`` is resolved before this check, so a request the cost model
#: routes to ``pruned``/``banded``/``hirschberg`` dispatches to
#: ``align3`` instead of losing its pruning to the pool.
POOL_METHODS = ("wavefront", "shared", "threads")

#: Namespace prefix for order-insensitive secondary cache entries, kept
#: disjoint from exact digests so a permutation-derived alignment can
#: never masquerade as a bit-identical exact hit.
PERM_PREFIX = "p:"

#: Largest cube served from the pool; beyond this the full move cube
#: would dominate memory and ``align3``'s degradation ladder should rule.
DEFAULT_MAX_POOL_CELLS = 2_000_000


@dataclass(frozen=True)
class AlignmentRequest:
    """One alignment request inside a batch.

    ``scheme=None`` resolves per request from the guessed alphabet
    (:func:`repro.core.api.resolve_scheme`); ``rid`` is an optional
    caller-supplied identifier echoed back on the result.
    ``constraints`` is an optional anchor chain (``(i, j, k, length)``
    tuples, see :mod:`repro.anchor`) forwarded to
    ``align3(constraints=...)``; it is normalised at admission and
    folded into the cache key.
    """

    seqs: tuple[str, str, str]
    scheme: ScoringScheme | None = None
    mode: str = "global"
    method: str = "auto"
    rid: str | None = None
    constraints: tuple[tuple[int, int, int, int], ...] | None = None


@dataclass
class RequestResult:
    """How one request was served."""

    index: int
    rid: str | None
    alignment: Alignment3
    key: str
    #: ``memory_hit``/``disk_hit`` (cache), ``dedup`` (identical request
    #: in this batch), ``permutation`` (row-permuted equivalent), or
    #: ``computed`` (cold).
    source: str
    latency_s: float

    @property
    def cache_hit(self) -> bool:
        return self.source in ("memory_hit", "disk_hit")


@dataclass
class BatchStats:
    """Aggregate accounting for one ``run()``."""

    requests: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    dedup_hits: int = 0
    permutation_hits: int = 0
    computed: int = 0
    pool_jobs: int = 0
    pool_setup_s: float = 0.0
    pool_savings_s: float = 0.0
    shape_groups: int = 0
    wall_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def dedup_ratio(self) -> float:
        """Fraction of requests served without a fresh O(n^3) compute."""
        if not self.requests:
            return 0.0
        return (self.requests - self.computed) / self.requests

    def snapshot(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "dedup_hits": self.dedup_hits,
            "permutation_hits": self.permutation_hits,
            "computed": self.computed,
            "dedup_ratio": self.dedup_ratio,
            "pool_jobs": self.pool_jobs,
            "pool_setup_s": self.pool_setup_s,
            "pool_savings_s": self.pool_savings_s,
            "shape_groups": self.shape_groups,
            "wall_s": self.wall_s,
        }


@dataclass
class BatchReport:
    """Results (in request order) plus the batch's accounting."""

    results: list[RequestResult]
    stats: BatchStats = field(default_factory=BatchStats)

    def alignments(self) -> list[Alignment3]:
        return [r.alignment for r in self.results]


class BatchScheduler:
    """Serve batches of alignment requests over shared workers and a cache.

    Parameters
    ----------
    cache:
        Result cache shared across batches; None disables caching (the
        in-batch dedup stages still apply).
    workers:
        Worker count for the pool (1 = serial sweeps, no forking).
    max_pool_cells:
        Cube-size ceiling for pool execution; larger jobs fall back to
        :func:`align3`, whose degradation ladder knows about memory.
    auto_policy:
        Forwarded to :func:`repro.core.api.select_method` when resolving
        ``method="auto"`` requests: ``"similarity"`` (default) or the
        legacy ``"cells"`` split.

    Use as a context manager, or call :meth:`close` to release the pool::

        with BatchScheduler(cache=ResultCache()) as sched:
            report = sched.run(requests)
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        workers: int = 2,
        max_pool_cells: int = DEFAULT_MAX_POOL_CELLS,
        auto_policy: str = "similarity",
        cells_per_s_hint: "float | Callable[[], float | None] | None" = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if auto_policy not in AUTO_POLICIES:
            raise ValueError(
                f"unknown auto_policy {auto_policy!r}; "
                f"available: {AUTO_POLICIES}"
            )
        self.cache = cache
        self.workers = int(workers)
        self.max_pool_cells = int(max_pool_cells)
        self.auto_policy = auto_policy
        #: Observed plain-sweep throughput for admission-informed method
        #: selection: a number, or a zero-arg callable read per request
        #: (the serve tier binds the admission controller's live EWMA).
        self.cells_per_s_hint = cells_per_s_hint
        self._pool = None  # lazily created WavefrontPool
        self._pool_capacity = (0, 0, 0)

    def _hint(self) -> float | None:
        hint = self.cells_per_s_hint
        if callable(hint):
            hint = hint()
        return float(hint) if hint else None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self, dims_list: list[tuple[int, int, int]]):
        """A pool whose capacity covers ``dims_list``, reusing the live one
        when it already fits (the whole point: spawn workers once)."""
        from repro.parallel.executor import WavefrontPool

        needed = tuple(
            max(d[i] for d in dims_list) for i in range(3)
        )
        if self._pool is not None and all(
            n <= c for n, c in zip(needed, self._pool_capacity)
        ):
            return self._pool, 0.0
        if self._pool is not None:
            # Grow: never shrink below what earlier batches needed.
            needed = tuple(
                max(n, c) for n, c in zip(needed, self._pool_capacity)
            )
            self._pool.close()
            self._pool = None
        t0 = time.perf_counter()
        self._pool = WavefrontPool(needed, workers=self.workers)
        setup_s = time.perf_counter() - t0
        self._pool_capacity = needed
        return self._pool, setup_s

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_capacity = (0, 0, 0)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request normalisation and single-request execution
    # ------------------------------------------------------------------

    @staticmethod
    def _normalise(req: "AlignmentRequest | Sequence[str]") -> AlignmentRequest:
        if not isinstance(req, AlignmentRequest):
            seqs = tuple(req)
            if len(seqs) != 3:
                raise ValueError(
                    f"a request needs exactly three sequences, got {len(seqs)}"
                )
            req = AlignmentRequest(seqs=seqs)  # type: ignore[arg-type]
        check_sequences(req.seqs, count=3)
        if req.mode not in MODES:
            raise ValueError(f"unknown mode {req.mode!r}; available: {MODES}")
        if req.method not in AVAILABLE_METHODS:
            raise ValueError(
                f"unknown method {req.method!r}; available: {AVAILABLE_METHODS}"
            )
        if req.mode != "global" and req.method != "auto":
            raise ValueError(
                f"mode {req.mode!r} has a single engine; use method='auto'"
            )
        if req.constraints:
            if req.mode != "global":
                raise ValueError(
                    "constrained alignment supports mode='global' only"
                )
            from repro.anchor import normalize_constraints

            dims = tuple(len(s) for s in req.seqs)
            req = replace(
                req, constraints=normalize_constraints(req.constraints, dims)
            )
        elif req.constraints is not None:
            req = replace(req, constraints=None)
        return req

    def _resolve(
        self, req: AlignmentRequest, scheme: ScoringScheme
    ) -> tuple[str, str]:
        """``(resolved engine, cache-key method component)`` for a request.

        Mirrors ``align3``'s resolution order: the key must be derived
        from the method that will actually run, not the request string —
        keying on the raw string stored the same bit-identical alignment
        under ``auto`` and its resolved engine twice (the cache-aliasing
        bug this PR fixes). Non-global modes have a single engine each,
        so their raw ``auto`` keys are already canonical.

        Chain-mode requests (constraints, or ``method="anchored"``)
        resolve to the sentinel engine ``"chain"`` — never pool-eligible,
        always dispatched through ``align3`` which owns the per-sub-cube
        selection. Constrained results are engine-independent (every
        segment engine is exact), so they key as ``"exact"`` plus the
        constraint digest; anchored results key as their own class.
        """
        if req.mode != "global":
            return req.method, req.method
        if req.constraints:
            return "chain", "exact"
        if req.method == "anchored":
            return "chain", "anchored"
        method = req.method
        if method == "auto":
            if scheme.is_affine:
                method = "affine"
            else:
                method, _sel = select_method(
                    *req.seqs, scheme, policy=self.auto_policy,
                    cells_per_s=self._hint(),
                )
        return method, method_key_class(method)

    def _pool_eligible(
        self, req: AlignmentRequest, scheme: ScoringScheme, resolved: str
    ) -> bool:
        if req.mode != "global" or scheme.is_affine:
            return False
        if resolved not in POOL_METHODS:
            return False
        n1, n2, n3 = (len(s) for s in req.seqs)
        if min(n1, n2, n3) == 0:
            return False  # degenerate cubes run serially in microseconds
        return (n1 + 1) * (n2 + 1) * (n3 + 1) <= self.max_pool_cells

    def _compute_direct(
        self, req: AlignmentRequest, scheme: ScoringScheme
    ) -> Alignment3:
        if req.mode == "local":
            from repro.core.local import align3_local

            aln = align3_local(*req.seqs, scheme)
        elif req.mode == "semiglobal":
            from repro.core.semiglobal import align3_semiglobal

            aln = align3_semiglobal(*req.seqs, scheme)
        else:
            aln = align3(
                *req.seqs,
                scheme,
                method=req.method,
                workers=self.workers,
                auto_policy=self.auto_policy,
                constraints=req.constraints,
                cells_per_s_hint=self._hint(),
            )
        aln.meta.setdefault("mode", req.mode)
        aln.meta.setdefault("scheme", scheme.name)
        return aln

    def _compute_pooled(
        self, pool, req: AlignmentRequest, scheme: ScoringScheme,
        resolved: str,
    ) -> Alignment3:
        aln = pool.align3(*req.seqs, scheme)
        aln.meta["method"] = resolved
        aln.meta["mode"] = req.mode
        aln.meta["scheme"] = scheme.name
        return aln

    # ------------------------------------------------------------------
    # The batch pipeline
    # ------------------------------------------------------------------

    def run(
        self,
        requests: Iterable["AlignmentRequest | Sequence[str]"],
        on_result: "Callable[[RequestResult], None] | None" = None,
    ) -> BatchReport:
        """Serve ``requests``; results come back in request order.

        ``on_result`` is invoked with each :class:`RequestResult` the
        moment its group is served (cache hits first, then computes as
        each shape group finishes) — completion order, not request
        order; ``RequestResult.index`` maps back.
        """
        t_batch = time.perf_counter()
        reqs = [self._normalise(r) for r in requests]
        schemes = [resolve_scheme(r.seqs, r.scheme) for r in reqs]
        resolved = [
            self._resolve(req, scheme)
            for req, scheme in zip(reqs, schemes)
        ]
        stats = BatchStats(requests=len(reqs))
        results: list[RequestResult | None] = [None] * len(reqs)

        with _trace.span("batch", requests=len(reqs)):
            self._run_stages(
                reqs, schemes, resolved, results, stats, emit=on_result
            )

        stats.wall_s = time.perf_counter() - t_batch
        final = [r for r in results if r is not None]
        assert len(final) == len(reqs), "every request must be served"
        for r in final:
            _obs.record_request(
                seconds=r.latency_s,
                cache_hit=r.cache_hit,
                deduped=r.source in ("dedup", "permutation"),
            )
        _obs.record_batch(
            requests=stats.requests,
            cache_hits=stats.cache_hits,
            deduped=stats.dedup_hits + stats.permutation_hits,
            computed=stats.computed,
            seconds=stats.wall_s,
            pool_jobs=stats.pool_jobs,
            pool_savings_s=stats.pool_savings_s,
        )
        return BatchReport(results=final, stats=stats)

    def run_stream(
        self,
        requests: Iterable["AlignmentRequest | Sequence[str]"],
        on_result: "Callable[[RequestResult], None]",
    ) -> BatchReport:
        """Like :meth:`run`, but built for arbitrarily long batches: each
        result goes to ``on_result`` as it completes and its alignment is
        then **released** (set to None), so peak memory holds one shape
        group's alignments instead of the whole batch's. The returned
        report still carries full stats and per-request accounting
        (index, rid, key, source, latency) — just no alignment rows.
        """

        def emit_and_release(res: RequestResult) -> None:
            on_result(res)
            res.alignment = None  # type: ignore[assignment]

        return self.run(requests, on_result=emit_and_release)

    def _run_stages(
        self,
        reqs: list[AlignmentRequest],
        schemes: list[ScoringScheme],
        resolved: list[tuple[str, str]],
        results: list[RequestResult | None],
        stats: BatchStats,
        emit: "Callable[[RequestResult], None] | None" = None,
    ) -> None:
        # Stage 1: group identical requests; probe the cache once each.
        # Keys carry the resolved method's equivalence class, so an
        # ``auto`` request and the ``wavefront`` it resolves to are one
        # group here instead of two computes.
        groups: dict[str, list[int]] = {}
        for i, (req, scheme) in enumerate(zip(reqs, schemes)):
            key = request_key(
                req.seqs, scheme, req.mode, resolved[i][1],
                constraints=req.constraints,
            )
            groups.setdefault(key, []).append(i)

        pending: list[tuple[str, list[int]]] = []
        for key, idxs in groups.items():
            req, scheme = reqs[idxs[0]], schemes[idxs[0]]
            key_method = resolved[idxs[0]][1]
            t0 = time.perf_counter()
            hit = None
            source = "memory_hit"
            if self.cache is not None:
                pre_disk = self.cache.stats.disk_hits
                hit = self.cache.get(key)
                if (
                    hit is None
                    and req.method != key_method
                    and not req.constraints
                ):
                    # Migration probe: older releases keyed on the raw
                    # method string; re-home a hit under the class key.
                    # (Never for constrained requests — a legacy probe
                    # has no constraint digest, so it could alias an
                    # unconstrained result onto a constrained request.)
                    legacy = request_key(
                        req.seqs, scheme, req.mode, req.method
                    )
                    hit = self.cache.get(legacy)
                    if hit is not None:
                        self.cache.put(key, hit)
                if self.cache.stats.disk_hits > pre_disk:
                    source = "disk_hit"
            dt = time.perf_counter() - t0
            if hit is not None:
                self._fill(
                    results, reqs, idxs, key, hit, source, dt, stats,
                    emit=emit,
                )
            else:
                pending.append((key, idxs))

        # Stage 2: permutation reuse — from the cache, then within the
        # batch (one compute per canonical triple).
        perm_groups: dict[str, list[tuple[str, list[int]]]] = {}
        to_compute: list[tuple[str, list[int]]] = []
        for key, idxs in pending:
            req, scheme = reqs[idxs[0]], schemes[idxs[0]]
            if resolved[idxs[0]][0] == "chain":
                # Constrained/anchored requests skip permutation reuse:
                # anchor coordinates are order-sensitive, and discovery's
                # chain tie-breaks under a permuted sort order may pick a
                # different co-optimal chain — score equality would not
                # be guaranteed.
                to_compute.append((key, idxs))
                continue
            pkey = PERM_PREFIX + permutation_key(
                req.seqs, scheme, req.mode, resolved[idxs[0]][1]
            )
            t0 = time.perf_counter()
            canon = (
                self.cache.get(pkey, record=False)
                if self.cache is not None
                else None
            )
            dt = time.perf_counter() - t0
            if canon is not None:
                derived = derive_for_order(canon, req.seqs)
                self._fill(
                    results, reqs, idxs, key, derived, "permutation", dt,
                    stats, emit=emit,
                )
                continue
            bucket = perm_groups.setdefault(pkey, [])
            if bucket:
                bucket.append((key, idxs))  # follower: derived after compute
            else:
                bucket.append((key, idxs))
                to_compute.append((key, idxs))

        # Stage 3: group misses by cube shape, largest first, and run them
        # over one pool; ineligible jobs dispatch per request.
        by_shape: dict[tuple[int, int, int], list[tuple[str, list[int]]]] = {}
        direct: list[tuple[str, list[int]]] = []
        for key, idxs in to_compute:
            req, scheme = reqs[idxs[0]], schemes[idxs[0]]
            if self._pool_eligible(req, scheme, resolved[idxs[0]][0]):
                dims = tuple(len(s) for s in req.seqs)
                by_shape.setdefault(dims, []).append((key, idxs))
            else:
                direct.append((key, idxs))
        stats.shape_groups = len(by_shape)

        pool = None
        if by_shape:
            pool, setup_s = self._ensure_pool(list(by_shape.keys()))
            stats.pool_setup_s = setup_s
            n_pool_jobs = sum(len(v) for v in by_shape.values())
            # Reusing live workers saves roughly one spawn per job after
            # the first; with a pre-warmed pool (setup 0) every job rides
            # the previous batch's spawn.
            per_spawn = setup_s if setup_s > 0 else self._last_setup_s
            stats.pool_savings_s = per_spawn * max(
                0, n_pool_jobs - (1 if setup_s > 0 else 0)
            )
            if setup_s > 0:
                self._last_setup_s = setup_s

        for dims in sorted(by_shape, key=lambda d: -(d[0] * d[1] * d[2])):
            for key, idxs in by_shape[dims]:
                req, scheme = reqs[idxs[0]], schemes[idxs[0]]
                t0 = time.perf_counter()
                aln = self._compute_pooled(
                    pool, req, scheme, resolved[idxs[0]][0]
                )
                dt = time.perf_counter() - t0
                stats.pool_jobs += 1
                self._finish_compute(
                    results, reqs, schemes, resolved, perm_groups, key,
                    idxs, aln, dt, stats, emit=emit,
                )

        for key, idxs in direct:
            req, scheme = reqs[idxs[0]], schemes[idxs[0]]
            t0 = time.perf_counter()
            aln = self._compute_direct(req, scheme)
            dt = time.perf_counter() - t0
            self._finish_compute(
                results, reqs, schemes, resolved, perm_groups, key, idxs,
                aln, dt, stats, emit=emit,
            )

    _last_setup_s: float = 0.0

    # ------------------------------------------------------------------
    # Result fan-out
    # ------------------------------------------------------------------

    def _finish_compute(
        self,
        results: list[RequestResult | None],
        reqs: list[AlignmentRequest],
        schemes: list[ScoringScheme],
        resolved: list[tuple[str, str]],
        perm_groups: dict[str, list[tuple[str, list[int]]]],
        key: str,
        idxs: list[int],
        aln: Alignment3,
        dt: float,
        stats: BatchStats,
        emit: "Callable[[RequestResult], None] | None" = None,
    ) -> None:
        req, scheme = reqs[idxs[0]], schemes[idxs[0]]
        stats.computed += 1
        if resolved[idxs[0]][0] == "chain":
            # No permutation key for chain-mode results (see stage 2).
            if self.cache is not None:
                self.cache.put(key, aln)
            self._fill(
                results, reqs, idxs, key, aln, "computed", dt, stats,
                emit=emit,
            )
            return
        canonical, perm = canonical_order(req.seqs)
        pkey = PERM_PREFIX + permutation_key(
            req.seqs, scheme, req.mode, resolved[idxs[0]][1]
        )
        if self.cache is not None:
            self.cache.put(key, aln)
            self.cache.put(pkey, permute_rows(aln, perm))
        self._fill(
            results, reqs, idxs, key, aln, "computed", dt, stats, emit=emit
        )
        # Permutation-equivalent followers discovered in stage 2.
        for fkey, fidxs in perm_groups.get(pkey, []):
            if fkey == key:
                continue
            freq = reqs[fidxs[0]]
            derived = derive_for_order(permute_rows(aln, perm), freq.seqs)
            self._fill(
                results, reqs, fidxs, fkey, derived, "permutation", dt,
                stats, emit=emit,
            )

    def _fill(
        self,
        results: list[RequestResult | None],
        reqs: list[AlignmentRequest],
        idxs: list[int],
        key: str,
        aln: Alignment3,
        source: str,
        dt: float,
        stats: BatchStats,
        emit: "Callable[[RequestResult], None] | None" = None,
    ) -> None:
        for rank, i in enumerate(idxs):
            # Each requester gets its own object; a shared one would let
            # one caller's meta edits leak into another's result.
            own = Alignment3(
                rows=aln.rows, score=aln.score, meta=dict(aln.meta)
            )
            src = source if rank == 0 else "dedup"
            own.meta["batch"] = {"source": src, "key": key}
            if rank == 0:
                if source == "memory_hit":
                    stats.memory_hits += 1
                elif source == "disk_hit":
                    stats.disk_hits += 1
                elif source == "permutation":
                    stats.permutation_hits += 1
            else:
                stats.dedup_hits += 1
            res = RequestResult(
                index=i,
                rid=reqs[i].rid,
                alignment=own,
                key=key,
                source=src,
                latency_s=dt,
            )
            results[i] = res
            if emit is not None:
                emit(res)


def run_batch(
    requests: Iterable["AlignmentRequest | Sequence[str]"],
    cache: ResultCache | None = None,
    workers: int = 2,
    max_pool_cells: int = DEFAULT_MAX_POOL_CELLS,
    auto_policy: str = "similarity",
) -> BatchReport:
    """One-shot convenience: build a scheduler, run one batch, close it.

    Prefer a long-lived :class:`BatchScheduler` when serving repeatedly —
    this helper still gets the dedup and caching but pays the pool spawn
    per call.
    """
    with BatchScheduler(
        cache=cache,
        workers=workers,
        max_pool_cells=max_pool_cells,
        auto_policy=auto_policy,
    ) as sched:
        return sched.run(requests)
