"""Reading batch request files for the ``repro batch`` CLI.

Two formats:

* **JSONL** (``*.jsonl``/``*.ndjson``) — one request object per line,
  either ``{"seqs": ["...", "...", "..."]}`` or ``{"a": ..., "b": ...,
  "c": ...}``, with optional ``"id"``, ``"mode"``, ``"method"`` and
  ``"constraints"`` (a list of ``[i, j, k, length]`` anchor triples,
  see :mod:`repro.anchor`) fields. Blank lines and ``#`` comment lines
  are skipped.
* **FASTA-of-many** — a plain FASTA file whose record count is a
  multiple of three; consecutive triples form the requests, identified
  by their first record's header.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.batch.scheduler import AlignmentRequest
from repro.seqio.fasta import read_fasta

#: Extensions parsed as JSONL request files; everything else is FASTA.
JSONL_SUFFIXES = (".jsonl", ".ndjson", ".json")


def requests_from_jsonl(path: Any) -> list[AlignmentRequest]:
    """Parse a JSONL request file (see module docs for the line schema)."""
    out: list[AlignmentRequest] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(obj, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(obj).__name__}"
                )
            if "seqs" in obj:
                seqs = obj["seqs"]
            elif all(k in obj for k in ("a", "b", "c")):
                seqs = [obj["a"], obj["b"], obj["c"]]
            else:
                raise ValueError(
                    f"{path}:{lineno}: request needs 'seqs' or 'a'/'b'/'c'"
                )
            if not (
                isinstance(seqs, list)
                and len(seqs) == 3
                and all(isinstance(s, str) for s in seqs)
            ):
                raise ValueError(
                    f"{path}:{lineno}: 'seqs' must be three strings"
                )
            constraints = None
            if obj.get("constraints"):
                from repro.anchor import constraints_from_jsonable

                try:
                    constraints = constraints_from_jsonable(
                        obj["constraints"]
                    )
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            out.append(
                AlignmentRequest(
                    seqs=tuple(seqs),  # type: ignore[arg-type]
                    mode=obj.get("mode", "global"),
                    method=obj.get("method", "auto"),
                    rid=str(obj["id"]) if "id" in obj else f"req{lineno}",
                    constraints=constraints,
                )
            )
    return out


def requests_from_fasta(
    path: Any, mode: str = "global", method: str = "auto"
) -> list[AlignmentRequest]:
    """Read a FASTA file as consecutive record triples."""
    records = read_fasta(path)
    if not records or len(records) % 3 != 0:
        raise ValueError(
            f"{path}: FASTA batch input needs a multiple of three records, "
            f"got {len(records)}"
        )
    out: list[AlignmentRequest] = []
    for start in range(0, len(records), 3):
        triple = records[start : start + 3]
        out.append(
            AlignmentRequest(
                seqs=tuple(s for _h, s in triple),  # type: ignore[arg-type]
                mode=mode,
                method=method,
                rid=triple[0][0].split()[0] if triple[0][0].split() else f"req{start // 3}",
            )
        )
    return out


def read_requests(
    path: Any, mode: str = "global", method: str = "auto"
) -> list[AlignmentRequest]:
    """Dispatch on extension: JSONL request file or FASTA-of-many.

    JSONL lines may carry their own mode/method; the arguments here are
    the defaults (and the only source for FASTA input).
    """
    text = os.fspath(path)
    if text.lower().endswith(JSONL_SUFFIXES):
        reqs = requests_from_jsonl(path)
        if mode != "global" or method != "auto":
            reqs = [
                AlignmentRequest(
                    seqs=r.seqs,
                    mode=r.mode if r.mode != "global" else mode,
                    method=r.method if r.method != "auto" else method,
                    rid=r.rid,
                    constraints=r.constraints,
                )
                for r in reqs
            ]
        return reqs
    return requests_from_fasta(path, mode=mode, method=method)
