"""Request batching over persistent workers (``repro.batch``).

The throughput layer: :class:`BatchScheduler` serves many alignment
requests at once — deduplicating identical and permutation-equivalent
requests through :mod:`repro.cache`, grouping the remaining misses by
cube shape, and executing them over one long-lived
:class:`~repro.parallel.executor.WavefrontPool` instead of spawning
workers per call. ``repro batch`` is the CLI front end; see
``docs/batching.md`` and ``tools/check_batch.py`` (the throughput gate).
"""

from repro.batch.scheduler import (
    DEFAULT_MAX_POOL_CELLS,
    PERM_PREFIX,
    POOL_METHODS,
    AlignmentRequest,
    BatchReport,
    BatchScheduler,
    BatchStats,
    RequestResult,
    run_batch,
)
from repro.batch.io import (
    read_requests,
    requests_from_fasta,
    requests_from_jsonl,
)

__all__ = [
    "DEFAULT_MAX_POOL_CELLS",
    "PERM_PREFIX",
    "POOL_METHODS",
    "AlignmentRequest",
    "BatchReport",
    "BatchScheduler",
    "BatchStats",
    "RequestResult",
    "read_requests",
    "requests_from_fasta",
    "requests_from_jsonl",
    "run_batch",
]
