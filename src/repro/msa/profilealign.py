"""Profile-profile global alignment (the progressive aligner's join step).

A profile of depth ``d`` and length ``L`` is summarised as residue-count
vectors per column; the SP score of pairing two profile columns is a
bilinear form in the counts, so the whole ``L1 x L2`` column-pair score
matrix is three matrix products — the same gather-don't-recompute idea as
the 3-D kernels, at profile granularity.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.seqio.alphabet import GAP_CHAR

NEG = -1.0e30


def profile_counts(
    rows: tuple[str, ...] | list[str], scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray]:
    """Per-column residue counts and gap counts of aligned ``rows``.

    Returns ``(counts, gaps)``: ``counts[x, a]`` is how many rows have
    residue code ``a`` in column ``x``; ``gaps[x]`` how many have a gap.
    """
    if not rows:
        raise ValueError("profile requires at least one row")
    length = len(rows[0])
    k = scheme.alphabet.size
    counts = np.zeros((length, k))
    gaps = np.zeros(length)
    for row in rows:
        if len(row) != length:
            raise ValueError("profile rows have unequal lengths")
        for x, ch in enumerate(row):
            if ch == GAP_CHAR:
                gaps[x] += 1
            else:
                counts[x, int(scheme.alphabet.encode(ch)[0])] += 1
    return counts, gaps


def column_pair_scores(
    counts_p: np.ndarray,
    gaps_p: np.ndarray,
    counts_q: np.ndarray,
    gaps_q: np.ndarray,
    scheme: ScoringScheme,
) -> np.ndarray:
    """SP score of pairing every column of P with every column of Q."""
    res_p = counts_p.sum(axis=1)
    res_q = counts_q.sum(axis=1)
    S = counts_p @ scheme.matrix @ counts_q.T
    S += scheme.gap * (gaps_p[:, None] * res_q[None, :])
    S += scheme.gap * (res_p[:, None] * gaps_q[None, :])
    return S


def align_profiles(
    rows_p: tuple[str, ...] | list[str],
    rows_q: tuple[str, ...] | list[str],
    scheme: ScoringScheme,
) -> tuple[tuple[str, ...], float]:
    """Globally align two profiles; returns merged rows (P's rows first)
    and the NW objective value (cross-profile SP contribution).

    The within-profile score is fixed by the inputs and not part of the
    objective — standard progressive-alignment practice.
    """
    if scheme.is_affine:
        raise ValueError("align_profiles implements the linear gap model")
    counts_p, gaps_p = profile_counts(rows_p, scheme)
    counts_q, gaps_q = profile_counts(rows_q, scheme)
    lp, lq = counts_p.shape[0], counts_q.shape[0]
    depth_p, depth_q = len(rows_p), len(rows_q)

    pair = column_pair_scores(counts_p, gaps_p, counts_q, gaps_q, scheme)
    # Cost of a P column against an inserted all-gap column of Q (and
    # vice versa): res_p[x] residues each paired with depth_q gaps.
    gx = scheme.gap * counts_p.sum(axis=1) * depth_q
    gy = scheme.gap * counts_q.sum(axis=1) * depth_p

    D = np.full((lp + 1, lq + 1), NEG)
    M = np.zeros((lp + 1, lq + 1), dtype=np.int8)
    D[0, 0] = 0.0
    for x in range(1, lp + 1):
        D[x, 0] = D[x - 1, 0] + gx[x - 1]
        M[x, 0] = 1
    for y in range(1, lq + 1):
        D[0, y] = D[0, y - 1] + gy[y - 1]
        M[0, y] = 2
    for x in range(1, lp + 1):
        row_up = D[x - 1]
        row = D[x]
        pr = pair[x - 1]
        gxx = gx[x - 1]
        for y in range(1, lq + 1):
            diag = row_up[y - 1] + pr[y - 1]
            up = row_up[y] + gxx
            left = row[y - 1] + gy[y - 1]
            if diag >= up and diag >= left:
                row[y] = diag
                M[x, y] = 3
            elif up >= left:
                row[y] = up
                M[x, y] = 1
            else:
                row[y] = left
                M[x, y] = 2

    # Traceback into merged rows.
    out_p: list[list[str]] = [[] for _ in rows_p]
    out_q: list[list[str]] = [[] for _ in rows_q]
    x, y = lp, lq
    while (x, y) != (0, 0):
        mv = int(M[x, y])
        if mv == 3:
            for r, row_str in enumerate(rows_p):
                out_p[r].append(row_str[x - 1])
            for r, row_str in enumerate(rows_q):
                out_q[r].append(row_str[y - 1])
            x, y = x - 1, y - 1
        elif mv == 1:
            for r, row_str in enumerate(rows_p):
                out_p[r].append(row_str[x - 1])
            for out in out_q:
                out.append(GAP_CHAR)
            x -= 1
        elif mv == 2:
            for out in out_p:
                out.append(GAP_CHAR)
            for r, row_str in enumerate(rows_q):
                out_q[r].append(row_str[y - 1])
            y -= 1
        else:  # pragma: no cover
            raise RuntimeError("broken profile-profile traceback")
    merged = tuple(
        "".join(reversed(chars)) for chars in (*out_p, *out_q)
    )
    return merged, float(D[lp, lq])
