"""Multiple (N-sequence) alignment extension.

Exact SP-optimal alignment is practical for three sequences (this
package's core); for N > 3 the O(n^N) lattice is out of reach and the
standard practice — and the natural extension direction of the paper
family — is *progressive* alignment over a guide tree:

1. score all pairs (:mod:`distance`),
2. cluster them into a binary guide tree with UPGMA (:mod:`guidetree`),
3. align profiles up the tree with profile-profile NW
   (:mod:`profilealign`, :mod:`progressive`).

For N = 3 the exact engines remain available through
:func:`repro.core.api.align3`; :func:`align_msa` uses them as the seed
when asked (``exact_triples=True``), tying the extension back to the
paper's contribution.
"""

from repro.msa.types import MultiAlignment
from repro.msa.distance import distance_matrix, score_matrix
from repro.msa.guidetree import GuideTree, upgma
from repro.msa.progressive import align_msa

__all__ = [
    "MultiAlignment",
    "distance_matrix",
    "score_matrix",
    "GuideTree",
    "upgma",
    "align_msa",
]
