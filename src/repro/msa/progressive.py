"""Progressive N-sequence alignment over a UPGMA guide tree."""

from __future__ import annotations

from typing import Sequence

from repro.core.scoring import ScoringScheme
from repro.msa.distance import distance_matrix
from repro.msa.guidetree import GuideTree, upgma
from repro.msa.profilealign import align_profiles
from repro.msa.types import MultiAlignment
from repro.pairwise.nw import align2
from repro.util.validation import check_sequences


def align_msa(
    seqs: Sequence[str],
    scheme: ScoringScheme,
    names: Sequence[str] | None = None,
    tree: GuideTree | None = None,
    exact_triples: bool = False,
) -> MultiAlignment:
    """Progressively align N sequences.

    Parameters
    ----------
    seqs:
        Two or more sequences.
    scheme:
        Linear-gap SP scoring scheme.
    names:
        Optional row labels.
    tree:
        A precomputed guide tree; by default UPGMA over the pairwise
        distance matrix.
    exact_triples:
        When True and ``len(seqs) == 3``, solve exactly with the 3-D DP
        (the package's core contribution) instead of progressively — the
        N=3 case is precisely where exactness is affordable.

    Returns
    -------
    MultiAlignment
        Rows in the input order; ``meta`` records the guide tree (newick)
        and whether the exact engine was used.
    """
    check_sequences(seqs)
    if scheme.is_affine:
        raise ValueError("align_msa implements the linear gap model")
    n = len(seqs)
    if n < 2:
        raise ValueError("align_msa requires at least two sequences")
    names_t = tuple(names) if names else tuple(f"seq{i}" for i in range(n))
    if len(names_t) != n:
        raise ValueError("names/seqs length mismatch")

    if n == 3 and exact_triples:
        from repro.core.api import align3

        aln3 = align3(seqs[0], seqs[1], seqs[2], scheme)
        return MultiAlignment(
            rows=aln3.rows,
            names=names_t,
            meta={"engine": "exact-3d", "score": aln3.score},
        )

    if n == 2:
        aln2 = align2(seqs[0], seqs[1], scheme)
        return MultiAlignment(
            rows=aln2.rows,
            names=names_t,
            meta={"engine": "pairwise", "score": aln2.score},
        )

    if tree is None:
        tree = upgma(distance_matrix(seqs, scheme))
    if tree.n_leaves != n:
        raise ValueError(
            f"guide tree has {tree.n_leaves} leaves for {n} sequences"
        )

    # Walk the merges bottom-up; each cluster carries its aligned rows and
    # the leaf order those rows correspond to.
    profiles: dict[int, tuple[tuple[str, ...], list[int]]] = {
        i: ((seqs[i],), [i]) for i in range(n)
    }
    for t, (left, right, _height) in enumerate(tree.merges):
        rows_l, order_l = profiles.pop(left)
        rows_r, order_r = profiles.pop(right)
        merged, _score = align_profiles(rows_l, rows_r, scheme)
        profiles[n + t] = (merged, order_l + order_r)

    (rows, order), = profiles.values()
    # Restore the caller's row order.
    inverse = [0] * n
    for pos, leaf in enumerate(order):
        inverse[leaf] = pos
    ordered_rows = tuple(rows[inverse[i]] for i in range(n))
    return MultiAlignment(
        rows=ordered_rows,
        names=names_t,
        meta={
            "engine": "progressive-upgma",
            "tree": tree.newick(list(names_t)),
            "merges": list(tree.merges),
        },
    )
