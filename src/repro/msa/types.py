"""N-row alignment container and SP scoring."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Iterator, Sequence

from repro.core.scoring import ScoringScheme
from repro.seqio.alphabet import GAP_CHAR


@dataclass
class MultiAlignment:
    """An alignment of N sequences.

    Attributes
    ----------
    rows:
        N aligned strings of equal length (gaps as ``-``).
    names:
        Optional per-row labels (defaults to ``seq0..seqN-1``).
    meta:
        Provenance (guide tree, merge order, scores).
    """

    rows: tuple[str, ...]
    names: tuple[str, ...] = ()
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.rows) < 2:
            raise ValueError("MultiAlignment requires at least two rows")
        lengths = {len(r) for r in self.rows}
        if len(lengths) != 1:
            raise ValueError(f"rows have unequal lengths: {sorted(lengths)}")
        if not self.names:
            object.__setattr__(
                self, "names", tuple(f"seq{i}" for i in range(len(self.rows)))
            )
        if len(self.names) != len(self.rows):
            raise ValueError("names/rows length mismatch")
        for col in zip(*self.rows):
            if all(c == GAP_CHAR for c in col):
                raise ValueError("alignment contains an all-gap column")

    @property
    def depth(self) -> int:
        """Number of rows."""
        return len(self.rows)

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.rows[0])

    def columns(self) -> Iterator[tuple[str, ...]]:
        """Iterate over alignment columns."""
        return zip(*self.rows)

    def sequences(self) -> tuple[str, ...]:
        """Input sequences, reconstructed by stripping gaps."""
        return tuple(r.replace(GAP_CHAR, "") for r in self.rows)

    def sp_score(self, scheme: ScoringScheme) -> float:
        """Sum-of-pairs score over all row pairs (linear gap model)."""
        total = 0.0
        for a, b in combinations(range(self.depth), 2):
            for x, y in zip(self.rows[a], self.rows[b]):
                total += scheme.pair_score(x, y)
        return total

    def pairwise_projection(self, a: int, b: int) -> tuple[str, str]:
        """The induced pairwise alignment of rows ``a`` and ``b`` (columns
        where both are gaps removed)."""
        ra: list[str] = []
        rb: list[str] = []
        for x, y in zip(self.rows[a], self.rows[b]):
            if x == GAP_CHAR and y == GAP_CHAR:
                continue
            ra.append(x)
            rb.append(y)
        return "".join(ra), "".join(rb)

    def identity(self) -> float:
        """Fraction of columns where every row has the same residue."""
        if self.length == 0:
            return 0.0
        same = sum(
            1
            for col in self.columns()
            if col[0] != GAP_CHAR and all(c == col[0] for c in col)
        )
        return same / self.length

    def pretty(self, width: int = 60) -> str:
        """Block-formatted rendering with row names."""
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        label_w = max(len(n) for n in self.names)
        blocks = []
        for start in range(0, self.length, width):
            blocks.append(
                "\n".join(
                    f"{name:<{label_w}} {row[start:start + width]}"
                    for name, row in zip(self.names, self.rows)
                )
            )
        return "\n\n".join(blocks)


def from_rows(
    rows: Sequence[str], names: Sequence[str] | None = None
) -> MultiAlignment:
    """Convenience constructor from any sequence of rows."""
    return MultiAlignment(
        rows=tuple(rows), names=tuple(names) if names else ()
    )
