"""Pairwise score and distance matrices for guide-tree construction."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.pairwise.nw import score2
from repro.util.validation import check_sequences


def score_matrix(
    seqs: Sequence[str], scheme: ScoringScheme
) -> np.ndarray:
    """Symmetric matrix of optimal global pairwise scores.

    ``S[i, i]`` is the self-alignment score (sum of diagonal matrix
    entries), which normalises the distance transform below.
    """
    check_sequences(seqs)
    n = len(seqs)
    S = np.zeros((n, n))
    for i in range(n):
        S[i, i] = sum(scheme.pair_score(c, c) for c in seqs[i])
        for j in range(i + 1, n):
            S[i, j] = S[j, i] = score2(seqs[i], seqs[j], scheme)
    return S


def distance_matrix(
    seqs: Sequence[str],
    scheme: ScoringScheme,
    scores: np.ndarray | None = None,
) -> np.ndarray:
    """Dissimilarity matrix derived from pairwise alignment scores.

    Uses the Feng–Doolittle-style normalisation

        D[i, j] = 1 - S(i, j) / min(S(i, i), S(j, j))

    clipped below at 0, so identical sequences are at distance 0 and
    unrelated ones approach (or exceed) 1. Self-scores of empty sequences
    are treated as 1 to avoid division by zero.
    """
    S = score_matrix(seqs, scheme) if scores is None else scores
    n = S.shape[0]
    D = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            denom = min(S[i, i], S[j, j])
            if denom <= 0:
                denom = 1.0
            d = max(0.0, 1.0 - S[i, j] / denom)
            D[i, j] = D[j, i] = d
    return D
