"""UPGMA guide trees for progressive alignment.

UPGMA (unweighted pair-group method with arithmetic mean) repeatedly
merges the two closest clusters, with inter-cluster distance the mean of
the member pairwise distances. The merge order is exactly the order the
progressive aligner joins profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GuideTree:
    """A rooted binary guide tree over leaf indices ``0..n-1``.

    Attributes
    ----------
    merges:
        Ordered list of ``(left, right, height)``: cluster ids merged at
        each step. Leaves are ids ``0..n-1``; the merge at position ``t``
        creates cluster id ``n + t``.
    n_leaves:
        Number of leaves.
    """

    merges: list[tuple[int, int, float]]
    n_leaves: int

    @property
    def root(self) -> int:
        """Cluster id of the root."""
        if self.n_leaves == 1:
            return 0
        return self.n_leaves + len(self.merges) - 1

    def members(self, cluster: int) -> list[int]:
        """Leaf indices under ``cluster``, in left-to-right order."""
        if cluster < self.n_leaves:
            return [cluster]
        left, right, _h = self.merges[cluster - self.n_leaves]
        return self.members(left) + self.members(right)

    def newick(self, names: list[str] | None = None) -> str:
        """Newick rendering (branch lengths = merge-height differences)."""
        names = names or [f"seq{i}" for i in range(self.n_leaves)]

        def height(c: int) -> float:
            return 0.0 if c < self.n_leaves else self.merges[c - self.n_leaves][2]

        def render(c: int) -> str:
            if c < self.n_leaves:
                return names[c]
            left, right, h = self.merges[c - self.n_leaves]
            return (
                f"({render(left)}:{h - height(left):.4g},"
                f"{render(right)}:{h - height(right):.4g})"
            )

        return render(self.root) + ";"


def upgma(distances: np.ndarray) -> GuideTree:
    """Build a UPGMA guide tree from a symmetric distance matrix.

    Deterministic: ties are broken towards the smallest cluster ids.
    """
    D = np.asarray(distances, dtype=np.float64)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValueError(f"distance matrix must be square, got {D.shape}")
    if not np.allclose(D, D.T):
        raise ValueError("distance matrix must be symmetric")
    if np.any(np.diag(D) != 0):
        raise ValueError("distance matrix diagonal must be zero")
    n = D.shape[0]
    if n == 0:
        raise ValueError("empty distance matrix")
    if n == 1:
        return GuideTree(merges=[], n_leaves=1)

    # Active clusters: id -> (size, height); distances in a dict keyed by
    # frozenset pairs for clarity (n is small for guide trees).
    active: dict[int, tuple[int, float]] = {i: (1, 0.0) for i in range(n)}
    dist: dict[frozenset[int], float] = {
        frozenset((i, j)): float(D[i, j])
        for i in range(n)
        for j in range(i + 1, n)
    }
    merges: list[tuple[int, int, float]] = []
    next_id = n
    while len(active) > 1:
        best_pair = min(
            (pair for pair in dist if pair <= active.keys()),
            key=lambda p: (dist[p], sorted(p)),
        )
        a, b = sorted(best_pair)
        d_ab = dist.pop(best_pair)
        size_a, _ = active.pop(a)
        size_b, _ = active.pop(b)
        height = d_ab / 2.0
        # UPGMA average-linkage update.
        for other in list(active):
            d_new = (
                size_a * dist.pop(frozenset((a, other)))
                + size_b * dist.pop(frozenset((b, other)))
            ) / (size_a + size_b)
            dist[frozenset((next_id, other))] = d_new
        active[next_id] = (size_a + size_b, height)
        merges.append((a, b, height))
        next_id += 1
    return GuideTree(merges=merges, n_leaves=n)
