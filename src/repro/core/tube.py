"""Per-row k-interval ("tube") pruning regions in O(n^2) memory.

A dense boolean keep-mask over the DP cube costs ``(n1+1)(n2+1)(n3+1)``
bytes — for the high-similarity requests that prune best, the mask is
bigger than every buffer the pruned sweep actually needs. This module
stores the kept region as one interval ``[klo, khi]`` of ``k`` per
``(i, j)`` cell instead: two ``(n1+1, n2+1)`` integer planes, O(n^2)
total, and per plane of the wavefront the validity test is two
elementwise compares against sliced views — no cube gather at all.

An interval per row is the *hull* of an arbitrary kept set along ``k``,
so converting a mask to a tube can only add cells back, never drop one;
pruning stays safe (the optimum's cells all survive) while the memory
blowup disappears. The Carrillo–Lipman builder
(:func:`repro.core.bounds.carrillo_lipman_tube`) constructs the hull
directly from the bound slabs, and the banded engine's scaled-diagonal
region (:func:`repro.core.band.band_tube`) is exactly interval-shaped,
so for it the tube is lossless.

Empty rows are encoded as ``khi < klo`` (canonically ``(0, -1)``); the
kernel's ``klo <= k <= khi`` test then rejects every ``k`` without a
special case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PruningTube:
    """Keep-region of a 3-D DP cube as per-``(i, j)`` ``k`` intervals.

    Attributes
    ----------
    klo, khi:
        Integer arrays of shape ``(n1+1, n2+1)``; cell ``(i, j, k)`` is
        kept iff ``klo[i, j] <= k <= khi[i, j]``. Rows with
        ``khi < klo`` are fully pruned.
    n3:
        Third cube dimension; intervals are clamped to ``[0, n3]`` at
        construction so the kernel's test subsumes cube validity.
    """

    klo: np.ndarray
    khi: np.ndarray
    n3: int

    def __post_init__(self) -> None:
        if self.klo.shape != self.khi.shape or self.klo.ndim != 2:
            raise ValueError(
                f"klo/khi must be matching 2-D arrays, got "
                f"{self.klo.shape} and {self.khi.shape}"
            )
        if self.n3 < 0:
            raise ValueError(f"n3 must be >= 0, got {self.n3}")
        # Canonicalise: inside [0, n3], empty rows as (0, -1). The kernel
        # relies on klo >= 0 and khi <= n3 to skip the cube-bounds check.
        self.klo = np.clip(self.klo, 0, self.n3).astype(np.intp, copy=False)
        self.khi = np.clip(self.khi, -1, self.n3).astype(np.intp, copy=False)
        empty = self.khi < self.klo
        if empty.any():
            self.klo[empty] = 0
            self.khi[empty] = -1

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(n1+1, n2+1, n3+1)`` cube shape this tube prunes."""
        return (self.klo.shape[0], self.klo.shape[1], self.n3 + 1)

    @property
    def total_cells(self) -> int:
        n1p, n2p, n3p = self.shape
        return n1p * n2p * n3p

    @property
    def kept_cells(self) -> int:
        """Cells the pruned sweep will actually evaluate."""
        return int(np.maximum(self.khi - self.klo + 1, 0).sum())

    @property
    def kept_fraction(self) -> float:
        total = self.total_cells
        return self.kept_cells / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Auxiliary memory of the representation itself (O(n^2))."""
        return self.klo.nbytes + self.khi.nbytes

    def keep_cell(self, i: int, j: int, k: int) -> None:
        """Force one cell into the tube (grows its row's interval)."""
        if self.khi[i, j] < self.klo[i, j]:  # row was empty
            self.klo[i, j] = self.khi[i, j] = k
        else:
            self.klo[i, j] = min(self.klo[i, j], k)
            self.khi[i, j] = max(self.khi[i, j], k)

    def contains(self, i: int, j: int, k: int) -> bool:
        return bool(self.klo[i, j] <= k <= self.khi[i, j])

    @property
    def covers_cube(self) -> bool:
        """True when nothing is pruned (every interval is ``[0, n3]``)."""
        return bool((self.klo == 0).all() and (self.khi == self.n3).all())

    def plane_row_windows(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-plane live-row hulls for a wavefront sweep.

        Returns ``(rlo, rhi)`` of length ``n1 + n2 + n3 + 1``: on plane
        ``d`` every kept cell has ``rlo[d] <= i <= rhi[d]`` (planes with
        no kept cells get ``rlo > rhi``). The sweep driver uses these to
        hand the kernel a row range proportional to the tube's thickness
        instead of the full plane, which removes the per-plane fixed
        cost that otherwise floors thin-tube sweeps. Each hull is a
        superset of the truly live rows (a row's plane interval
        ``[i + j + klo, i + j + khi]`` is itself hulled over ``j``), so
        extra rows only cost work — never correctness.
        """
        n1p, n2p = self.klo.shape
        dmax = (n1p - 1) + (n2p - 1) + self.n3
        nonempty = self.khi >= self.klo
        i = np.arange(n1p)[:, None]
        j = np.arange(n2p)[None, :]
        # Per row i: the hull of planes touched by any kept cell.
        dlo = np.where(nonempty, i + j + self.klo, dmax + 1).min(axis=1)
        dhi = np.where(nonempty, i + j + self.khi, -1).max(axis=1)
        ds = np.arange(dmax + 1)
        live = (dlo[:, None] <= ds) & (ds <= dhi[:, None])  # (n1p, planes)
        any_rows = live.any(axis=0)
        rlo = np.where(any_rows, live.argmax(axis=0), 1)
        rhi = np.where(any_rows, n1p - 1 - live[::-1].argmax(axis=0), 0)
        return rlo.astype(np.intp), rhi.astype(np.intp)

    def dense_mask(self) -> np.ndarray:
        """Materialise the equivalent boolean cube (tests/diagnostics
        only — using this in an engine defeats the representation)."""
        ks = np.arange(self.n3 + 1)[None, None, :]
        return (ks >= self.klo[:, :, None]) & (ks <= self.khi[:, :, None])

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "PruningTube":
        """Interval hull of a dense keep-mask (a superset of its cells)."""
        if mask.ndim != 3:
            raise ValueError(f"mask must be 3-D, got shape {mask.shape}")
        n3 = mask.shape[2] - 1
        any_k = mask.any(axis=2)
        first = mask.argmax(axis=2)
        last = n3 - mask[:, :, ::-1].argmax(axis=2)
        klo = np.where(any_k, first, 0)
        khi = np.where(any_k, last, -1)
        return cls(klo=klo, khi=khi, n3=n3)

    @classmethod
    def full(cls, dims: tuple[int, int, int]) -> "PruningTube":
        """A tube that keeps the whole ``(n1, n2, n3)`` cube."""
        n1, n2, n3 = dims
        shape = (n1 + 1, n2 + 1)
        return cls(
            klo=np.zeros(shape, dtype=np.intp),
            khi=np.full(shape, n3, dtype=np.intp),
            n3=n3,
        )
