"""Reference full-matrix 3-D dynamic program (scalar Python).

This is the *specification* implementation: a direct transcription of the
7-predecessor recurrence, looping cell by cell. It is deliberately simple —
every faster engine in the package is validated against it. Use it for
sequences up to a few tens of residues; beyond that, use
:mod:`repro.core.wavefront`.

Recurrence (linear gap model, similarity maximisation)
------------------------------------------------------
``D[i,j,k] = max over moves m in 1..7 of D[pred(m)] + delta(m, i, j, k)``
where ``delta`` is the SP score of the alignment column the move emits:

===========  =======================================================
move (bits)  column score
===========  =======================================================
A (1)        2*gap                       (a_i against two gaps)
B (2)        2*gap
C (4)        2*gap
AB (3)       s(a_i, b_j) + 2*gap
AC (5)       s(a_i, c_k) + 2*gap
BC (6)       s(b_j, c_k) + 2*gap
ABC (7)      s(a_i, b_j) + s(a_i, c_k) + s(b_j, c_k)
===========  =======================================================

``D[0,0,0] = 0``; cells outside the cube are ``-inf``.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.util.validation import check_sequences

#: Finite stand-in for minus infinity; keeps kernel arithmetic NaN-free.
NEG = -1.0e30


def dp3d_matrix(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the full score cube and move cube.

    Parameters
    ----------
    sa, sb, sc:
        The three sequences.
    scheme:
        Linear-gap SP scoring scheme (``scheme.is_affine`` must be False).
    mask:
        Optional boolean cube of shape ``(len(sa)+1, len(sb)+1, len(sc)+1)``;
        cells where it is False are excluded from the search (used to
        cross-check Carrillo–Lipman pruning). The origin and terminal cells
        must be included.

    Returns
    -------
    (D, M):
        ``D`` — float64 score cube, unreachable cells hold a large negative
        sentinel; ``M`` — int8 move cube (0 at the origin).
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError(
            "dp3d_matrix implements the linear gap model; "
            "use repro.core.affine for affine gaps"
        )
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    if mask is not None:
        if mask.shape != (n1 + 1, n2 + 1, n3 + 1):
            raise ValueError(
                f"mask shape {mask.shape} does not match cube "
                f"({n1 + 1}, {n2 + 1}, {n3 + 1})"
            )
        if not (mask[0, 0, 0] and mask[n1, n2, n3]):
            raise ValueError("mask must include the origin and terminal cells")

    D = np.full((n1 + 1, n2 + 1, n3 + 1), NEG, dtype=np.float64)
    M = np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    D[0, 0, 0] = 0.0

    observing = _obs.active()
    t0 = time.perf_counter() if observing else 0.0

    for i in range(n1 + 1):
        for j in range(n2 + 1):
            for k in range(n3 + 1):
                if i == j == k == 0:
                    continue
                if mask is not None and not mask[i, j, k]:
                    continue
                best = NEG
                best_move = 0
                # Move A (advance i only).
                if i >= 1:
                    v = D[i - 1, j, k] + g2
                    if v > best:
                        best, best_move = v, 1
                # Move B.
                if j >= 1:
                    v = D[i, j - 1, k] + g2
                    if v > best:
                        best, best_move = v, 2
                # Move C.
                if k >= 1:
                    v = D[i, j, k - 1] + g2
                    if v > best:
                        best, best_move = v, 4
                # Move AB.
                if i >= 1 and j >= 1:
                    v = D[i - 1, j - 1, k] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best, best_move = v, 3
                # Move AC.
                if i >= 1 and k >= 1:
                    v = D[i - 1, j, k - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best, best_move = v, 5
                # Move BC.
                if j >= 1 and k >= 1:
                    v = D[i, j - 1, k - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best, best_move = v, 6
                # Move ABC.
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        D[i - 1, j - 1, k - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best, best_move = v, 7
                D[i, j, k] = best
                M[i, j, k] = best_move
    if observing:
        cells = (
            (n1 + 1) * (n2 + 1) * (n3 + 1)
            if mask is None
            else int(mask.sum())
        )
        _obs.record_sweep(
            "dp3d",
            cells=cells,
            seconds=time.perf_counter() - t0,
            peak_plane_bytes=D.nbytes,
            move_cube_bytes=M.nbytes,
        )
    return D, M


def align3_dp3d(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
) -> Alignment3:
    """Optimal three-way alignment via the reference full-matrix DP."""
    with _trace.span("dp3d.sweep"):
        D, M = dp3d_matrix(sa, sb, sc, scheme, mask=mask)
    n1, n2, n3 = len(sa), len(sb), len(sc)
    score = float(D[n1, n2, n3])
    if score <= NEG / 2:
        raise RuntimeError(
            "terminal cell unreachable (over-aggressive pruning mask?)"
        )
    with _trace.span("dp3d.traceback"):
        moves = traceback_moves(M)
        cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "dp3d",
        "cells": (n1 + 1) * (n2 + 1) * (n3 + 1),
    }
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]


def score3_dp3d(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Optimal SP score only (reference path)."""
    D, _ = dp3d_matrix(sa, sb, sc, scheme)
    return float(D[len(sa), len(sb), len(sc)])
