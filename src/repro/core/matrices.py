"""Bundled substitution matrices.

Protein matrices are stored in the standard NCBI residue order, which is the
code order of :data:`repro.seqio.alphabet.PROTEIN`
(``ARNDCQEGHILKMFPSTWYV``). Wildcard codes (``X``/``N``) score 0 against
everything, the conventional neutral treatment.

All matrices are similarity scores to be *maximised*; distance-style
schemes (edit distance) are expressed by negating, see
:func:`edit_distance_scheme`.
"""

from __future__ import annotations

import numpy as np

from repro.seqio.alphabet import DNA, PROTEIN, RNA, Alphabet

_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4
"""

_PAM250_ROWS = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4
"""


def _parse_matrix(text: str, size: int) -> np.ndarray:
    values = [float(tok) for tok in text.split()]
    if len(values) != size * size:
        raise ValueError(
            f"matrix literal has {len(values)} entries, expected {size * size}"
        )
    mat = np.array(values, dtype=np.float64).reshape(size, size)
    if not np.array_equal(mat, mat.T):
        raise ValueError("substitution matrix literal is not symmetric")
    return mat


def expand_with_wildcard(core: np.ndarray, alphabet: Alphabet) -> np.ndarray:
    """Pad ``core`` with a zero-scoring wildcard row/column when the
    alphabet defines a wildcard code."""
    k = len(alphabet.letters)
    if core.shape != (k, k):
        raise ValueError(
            f"core matrix shape {core.shape} does not match alphabet "
            f"{alphabet.name!r} ({k} letters)"
        )
    if alphabet.wildcard is None:
        return core.copy()
    out = np.zeros((k + 1, k + 1), dtype=np.float64)
    out[:k, :k] = core
    return out


def blosum62() -> np.ndarray:
    """BLOSUM62 over :data:`PROTEIN` codes (wildcard ``X`` scores 0)."""
    return expand_with_wildcard(_parse_matrix(_BLOSUM62_ROWS, 20), PROTEIN)


def pam250() -> np.ndarray:
    """PAM250 over :data:`PROTEIN` codes (wildcard ``X`` scores 0)."""
    return expand_with_wildcard(_parse_matrix(_PAM250_ROWS, 20), PROTEIN)


def dna_simple(match: float = 5.0, mismatch: float = -4.0) -> np.ndarray:
    """Match/mismatch DNA matrix (default EDNAFULL core values 5/-4)."""
    core = np.full((4, 4), float(mismatch))
    np.fill_diagonal(core, float(match))
    return expand_with_wildcard(core, DNA)


def rna_simple(match: float = 5.0, mismatch: float = -4.0) -> np.ndarray:
    """Match/mismatch RNA matrix."""
    core = np.full((4, 4), float(mismatch))
    np.fill_diagonal(core, float(match))
    return expand_with_wildcard(core, RNA)


def dna_tstv(
    match: float = 5.0,
    transition: float = -1.0,
    transversion: float = -4.0,
) -> np.ndarray:
    """Transition/transversion-aware DNA matrix (Kimura-style).

    Transitions (purine<->purine A<->G, pyrimidine<->pyrimidine C<->T)
    are biologically far more frequent than transversions and are
    penalised less. Order is ``ACGT``; the wildcard scores 0.
    """
    if transition < transversion:
        raise ValueError(
            "transitions are the milder substitution: expected "
            f"transition >= transversion, got {transition} < {transversion}"
        )
    core = np.full((4, 4), float(transversion))
    np.fill_diagonal(core, float(match))
    a, c, g, t = 0, 1, 2, 3
    core[a, g] = core[g, a] = float(transition)
    core[c, t] = core[t, c] = float(transition)
    return expand_with_wildcard(core, DNA)


def unit_matrix(alphabet: Alphabet, match: float = 1.0, mismatch: float = -1.0) -> np.ndarray:
    """Match/mismatch matrix over an arbitrary alphabet."""
    k = len(alphabet.letters)
    core = np.full((k, k), float(mismatch))
    np.fill_diagonal(core, float(match))
    return expand_with_wildcard(core, alphabet)


def edit_distance_scheme(alphabet: Alphabet):
    """A :class:`~repro.core.scoring.ScoringScheme` whose *negated* optimal
    SP score is the sum of the three pairwise weighted edit distances
    (unit substitution and gap costs)."""
    from repro.core.scoring import ScoringScheme

    return ScoringScheme(
        alphabet=alphabet,
        matrix=unit_matrix(alphabet, match=0.0, mismatch=-1.0),
        gap=-1.0,
        name=f"edit-distance[{alphabet.name}]",
    )
