"""Linear-space optimal three-way alignment (3-D Hirschberg).

The full-matrix traceback needs an O(n^3) move cube; this module recovers
the optimal alignment in O(n^2) memory by divide and conquer:

1. Pick the longest sequence (rotate it to axis 0) and its midpoint ``mid``.
2. Compute the *forward* slab ``F[mid, j, k]`` (optimal score of aligning
   the prefixes) and the *backward* slab ``B[mid, j, k]`` (optimal score of
   aligning the suffixes, via a forward sweep over reversed sequences).
   Both are score-only O(n^2) sweeps.
3. Every cell on an optimal path at level ``mid`` satisfies
   ``F + B == OPT`` and any cell satisfies ``F + B <= OPT``; the argmax
   ``(j*, k*)`` therefore lies on an optimal path (an optimal path must
   pass through *some* cell of every ``i`` level because each move advances
   ``i`` by at most one).
4. Recurse on the two subcubes and concatenate.

Total work is a constant factor over one sweep (each recursion level sweeps
the two half-cubes, i.e. the cube volume halves per level: 2 + 1 + 1/2 +
... < 4 cube sweeps), while memory stays at two slabs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.rolling import backward_slab, forward_slab
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.core.wavefront import align3_wavefront
from repro.core.workspace import PlaneWorkspace
from repro.util.validation import check_sequences

#: Default subproblem size (in cells) below which the full-matrix wavefront
#: with traceback is used directly.
DEFAULT_BASE_CELLS = 200_000


@dataclass
class _Stats:
    """Mutable accumulator threaded through the recursion."""

    slab_sweeps: int = 0
    base_calls: int = 0
    base_cells: int = 0
    splits: list[tuple[int, int, int]] = field(default_factory=list)


def _solve(
    seqs: tuple[str, str, str],
    scheme: ScoringScheme,
    base_cells: int,
    engine: str,
    stats: _Stats,
    ws: PlaneWorkspace,
) -> list[tuple[str, str, str]]:
    n1, n2, n3 = (len(s) for s in seqs)
    volume = (n1 + 1) * (n2 + 1) * (n3 + 1)
    if volume <= base_cells or max(n1, n2, n3) < 2:
        aln = align3_wavefront(*seqs, scheme, workspace=ws)
        stats.base_calls += 1
        stats.base_cells += volume
        return list(aln.columns())

    # Rotate the longest sequence onto axis 0 so the split halves the
    # dominant dimension (and the slabs span the two smaller ones).
    lengths = (n1, n2, n3)
    axis0 = int(np.argmax(lengths))
    perm = (axis0,) + tuple(x for x in (0, 1, 2) if x != axis0)
    ps = (seqs[perm[0]], seqs[perm[1]], seqs[perm[2]])

    mid = len(ps[0]) // 2
    # The forward slab is freshly allocated (never a workspace view), so it
    # survives the backward sweep's reuse of the same workspace.
    fwd = forward_slab(*ps, scheme, mid, engine=engine, workspace=ws)
    bwd = backward_slab(*ps, scheme, mid, engine=engine, workspace=ws)
    stats.slab_sweeps += 2
    total = fwd + bwd
    j_star, k_star = np.unravel_index(int(np.argmax(total)), total.shape)
    stats.splits.append((mid, int(j_star), int(k_star)))

    left = _solve(
        (ps[0][:mid], ps[1][:j_star], ps[2][:k_star]),
        scheme,
        base_cells,
        engine,
        stats,
        ws,
    )
    right = _solve(
        (ps[0][mid:], ps[1][j_star:], ps[2][k_star:]),
        scheme,
        base_cells,
        engine,
        stats,
        ws,
    )
    cols = left + right
    inv = tuple(perm.index(y) for y in range(3))
    return [(c[inv[0]], c[inv[1]], c[inv[2]]) for c in cols]


def align3_hirschberg(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    base_cells: int = DEFAULT_BASE_CELLS,
    engine: str = "wavefront",
    workspace: PlaneWorkspace | None = None,
) -> Alignment3:
    """Optimal three-way alignment in O(n^2) memory.

    Parameters
    ----------
    base_cells:
        Subproblems at most this many cells are solved by the full-matrix
        wavefront directly (the recursion's base case). Smaller values lower
        peak memory at the cost of more sweeps.
    engine:
        Slab backend: ``"wavefront"`` (plane sweep with row capture) or
        ``"slab"`` (the rolling-slab formulation).
    workspace:
        Optional :class:`~repro.core.workspace.PlaneWorkspace`. Every
        recursion node — both slab sweeps and the base-case wavefront —
        draws its buffers from this one workspace instead of
        reallocating per split; by default a fresh one is created per
        call. Not thread-safe.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("align3_hirschberg implements the linear gap model")
    if base_cells < 8:
        raise ValueError(f"base_cells must be >= 8, got {base_cells}")
    stats = _Stats()
    ws = PlaneWorkspace() if workspace is None else workspace
    cols = _solve((sa, sb, sc), scheme, base_cells, engine, stats, ws)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    score = scheme.sp_score(rows)
    meta: dict[str, Any] = {
        "engine": "hirschberg",
        "slab_sweeps": stats.slab_sweeps,
        "base_calls": stats.base_calls,
        "base_cells": stats.base_cells,
        "splits": stats.splits,
    }
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]


def memory_estimate_bytes(n1: int, n2: int, n3: int, base_cells: int = DEFAULT_BASE_CELLS) -> int:
    """Analytic peak-memory estimate of the Hirschberg engine in bytes.

    Two float64 slabs over the two smaller dimensions, four padded planes
    inside the score-only sweeps, plus the base-case move cube.
    """
    dims = sorted((n1, n2, n3))
    small2 = (dims[0] + 1) * (dims[1] + 1)
    slabs = 2 * small2 * 8
    planes = 4 * (dims[2] + 2) * (dims[1] + 2) * 8
    cube = (n1 + 1) * (n2 + 1) * (n3 + 1)
    base = min(base_cells, cube) * (8 + 1)
    return slabs + planes + base
