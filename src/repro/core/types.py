"""Result types and the 7-move encoding shared by every 3-D DP engine.

Move encoding
-------------
A move is a non-empty subset of {advance A, advance B, advance C}, encoded as
a 3-bit integer: bit 0 advances A (the first index ``i``), bit 1 advances B
(``j``), bit 2 advances C (``k``). The seven legal moves are therefore the
integers 1..7; 0 is reserved for "no predecessor" (the origin cell) in move
cubes. ``MOVE_ABC == 7`` is the all-match move.

Every engine in :mod:`repro.core` and :mod:`repro.parallel` uses this same
encoding, which is what lets them share one traceback implementation
(:mod:`repro.core.traceback`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.seqio.alphabet import GAP_CHAR

#: All seven legal moves, in ascending encoding order.
ALL_MOVES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)

#: The all-advance (three-way match column) move.
MOVE_ABC = 7

#: Human-readable names, indexed by move code (index 0 unused).
MOVE_NAMES: tuple[str, ...] = (
    "origin",
    "A--",
    "-B-",
    "AB-",
    "--C",
    "A-C",
    "-BC",
    "ABC",
)


def move_delta(move: int) -> tuple[int, int, int]:
    """The (di, dj, dk) index advance of ``move``.

    >>> move_delta(7)
    (1, 1, 1)
    >>> move_delta(2)
    (0, 1, 0)
    """
    if not 1 <= move <= 7:
        raise ValueError(f"move must be in 1..7, got {move}")
    return (move & 1, (move >> 1) & 1, (move >> 2) & 1)


def moves_to_columns(
    moves: list[int],
    sa: str,
    sb: str,
    sc: str,
) -> list[tuple[str, str, str]]:
    """Expand a move sequence into alignment columns.

    ``moves`` is ordered from the start of the alignment to the end. Raises
    ``ValueError`` when the moves do not consume the sequences exactly.
    """
    i = j = k = 0
    cols: list[tuple[str, str, str]] = []
    for m in moves:
        di, dj, dk = move_delta(m)
        if i + di > len(sa) or j + dj > len(sb) or k + dk > len(sc):
            raise ValueError("move sequence overruns a sequence")
        ca = sa[i] if di else GAP_CHAR
        cb = sb[j] if dj else GAP_CHAR
        cc = sc[k] if dk else GAP_CHAR
        i, j, k = i + di, j + dj, k + dk
        cols.append((ca, cb, cc))
    if (i, j, k) != (len(sa), len(sb), len(sc)):
        raise ValueError(
            f"move sequence consumed ({i},{j},{k}) of "
            f"({len(sa)},{len(sb)},{len(sc)}) residues"
        )
    return cols


@dataclass
class Alignment3:
    """An alignment of three sequences.

    Attributes
    ----------
    rows:
        The three aligned strings (equal length, gaps as ``-``).
    score:
        The objective value reported by the engine that produced this
        alignment (sum-of-pairs under the scheme it was given).
    meta:
        Free-form provenance: engine name, cell counts, wall time, etc.
    """

    rows: tuple[str, str, str]
    score: float
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.rows) != 3:
            raise ValueError("Alignment3 requires exactly three rows")
        lengths = {len(r) for r in self.rows}
        if len(lengths) != 1:
            raise ValueError(f"rows have unequal lengths: {sorted(lengths)}")
        for row in self.rows:
            for a, b in zip(row, row[1:]):
                del a, b  # cheap iteration keeps validation O(n)
        # An all-gap column is never produced by a legal move sequence.
        for col in zip(*self.rows):
            if all(c == GAP_CHAR for c in col):
                raise ValueError("alignment contains an all-gap column")

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.rows[0])

    def columns(self) -> Iterator[tuple[str, str, str]]:
        """Iterate over alignment columns as character triples."""
        return zip(*self.rows)

    def sequences(self) -> tuple[str, str, str]:
        """The three input sequences, reconstructed by stripping gaps."""
        a, b, c = (row.replace(GAP_CHAR, "") for row in self.rows)
        return a, b, c

    def moves(self) -> list[int]:
        """Recover the move sequence of this alignment (see module docs)."""
        out = []
        for ca, cb, cc in self.columns():
            m = (
                (1 if ca != GAP_CHAR else 0)
                | (2 if cb != GAP_CHAR else 0)
                | (4 if cc != GAP_CHAR else 0)
            )
            out.append(m)
        return out

    def identity(self) -> float:
        """Fraction of columns in which all three residues are identical."""
        if self.length == 0:
            return 0.0
        same = sum(
            1
            for ca, cb, cc in self.columns()
            if ca == cb == cc and ca != GAP_CHAR
        )
        return same / self.length

    def pretty(self, width: int = 60) -> str:
        """Block-formatted rendering, ``width`` columns per block."""
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        blocks = []
        labels = ("A", "B", "C")
        for start in range(0, self.length, width):
            blocks.append(
                "\n".join(
                    f"{lbl} {row[start:start + width]}"
                    for lbl, row in zip(labels, self.rows)
                )
            )
        return "\n\n".join(blocks)

    def __str__(self) -> str:
        return (
            f"Alignment3(score={self.score:g}, length={self.length})\n"
            + self.pretty()
        )
