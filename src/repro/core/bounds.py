"""Carrillo–Lipman search-space pruning for three-sequence alignment.

Principle
---------
Project any three-way alignment onto a sequence pair: the projection is a
global pairwise alignment (both-gap columns vanish, scoring 0), so its
pairwise score is at most the optimal pairwise score of any path through
the projected cell. Therefore, for a 3-way path through cell ``(i, j, k)``:

    SP(path) <= T_ab[i, j] + T_ac[i, k] + T_bc[j, k]  =:  U(i, j, k)

where ``T_xy`` is the pairwise *through-cell* matrix (forward + backward,
:func:`repro.pairwise.matrices2d.through_matrix`). Any cell with
``U < L``, for a lower bound ``L <= OPT`` (e.g. the score of a heuristic
alignment), cannot lie on an optimal path and may be pruned. Every cell of
an optimal path has ``U >= OPT >= L``, so the optimum always survives.

The closer the three sequences, the tighter the pairwise bounds hug the
3-way optimum and the larger the pruned fraction — the divergence sweep of
experiment F5 measures exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.pairwise.matrices2d import through_matrix
from repro.util.validation import check_sequences


@dataclass
class PruningStats:
    """Summary of a pruning mask."""

    total_cells: int
    kept_cells: int
    lower_bound: float
    upper_bound_at_origin: float

    @property
    def kept_fraction(self) -> float:
        """Fraction of lattice cells that survive pruning."""
        return self.kept_cells / self.total_cells if self.total_cells else 0.0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of lattice cells eliminated."""
        return 1.0 - self.kept_fraction


def heuristic_lower_bound(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """A valid lower bound on the optimal SP score.

    Takes the better of the center-star and progressive heuristic
    alignments' SP scores — both are feasible alignments, so their scores
    never exceed the optimum.
    """
    from repro.heuristics import align3_centerstar, align3_progressive

    cs = align3_centerstar(sa, sb, sc, scheme)
    pg = align3_progressive(sa, sb, sc, scheme)
    return max(cs.score, pg.score)


def carrillo_lipman_mask(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    lower_bound: float | None = None,
    slack: float = 0.0,
) -> tuple[np.ndarray, PruningStats]:
    """Build the boolean keep-mask over the DP cube.

    Parameters
    ----------
    lower_bound:
        A known lower bound ``L <= OPT``. When omitted it is computed from
        the heuristic baselines (:func:`heuristic_lower_bound`).
    slack:
        Loosens the test to ``U >= L - slack`` (``slack >= 0``), retaining
        extra cells; useful to absorb floating-point ties or to study the
        pruning/safety tradeoff.

    Returns
    -------
    (mask, stats):
        ``mask[i, j, k]`` is True for cells that must be evaluated; origin
        and terminal cells are always kept.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError(
            "Carrillo–Lipman bounds are derived for the linear gap model"
        )
    if slack < 0:
        raise ValueError(f"slack must be >= 0, got {slack}")
    n1, n2, n3 = len(sa), len(sb), len(sc)

    t_ab = through_matrix(sa, sb, scheme)  # (n1+1, n2+1)
    t_ac = through_matrix(sa, sc, scheme)  # (n1+1, n3+1)
    t_bc = through_matrix(sb, sc, scheme)  # (n2+1, n3+1)

    if lower_bound is None:
        lower_bound = heuristic_lower_bound(sa, sb, sc, scheme)
    threshold = lower_bound - slack

    # Evaluate U slab-by-slab along i to avoid materialising the float cube.
    mask = np.empty((n1 + 1, n2 + 1, n3 + 1), dtype=bool)
    for i in range(n1 + 1):
        u_slab = (
            t_ab[i][:, None] + t_ac[i][None, :] + t_bc
        )  # (n2+1, n3+1)
        mask[i] = u_slab >= threshold
    mask[0, 0, 0] = True
    mask[n1, n2, n3] = True

    u_origin = float(t_ab[0, 0] + t_ac[0, 0] + t_bc[0, 0])
    stats = PruningStats(
        total_cells=mask.size,
        kept_cells=int(mask.sum()),
        lower_bound=float(lower_bound),
        upper_bound_at_origin=u_origin,
    )
    return mask, stats


def pairwise_upper_bound(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """The Carrillo–Lipman upper bound on the optimal SP score: the sum of
    the three optimal pairwise scores. Useful as a sanity envelope
    (``L <= OPT <= this``)."""
    from repro.pairwise.nw import score2

    return (
        score2(sa, sb, scheme)
        + score2(sa, sc, scheme)
        + score2(sb, sc, scheme)
    )
