"""Carrillo–Lipman search-space pruning for three-sequence alignment.

Principle
---------
Project any three-way alignment onto a sequence pair: the projection is a
global pairwise alignment (both-gap columns vanish, scoring 0), so its
pairwise score is at most the optimal pairwise score of any path through
the projected cell. Therefore, for a 3-way path through cell ``(i, j, k)``:

    SP(path) <= T_ab[i, j] + T_ac[i, k] + T_bc[j, k]  =:  U(i, j, k)

where ``T_xy`` is the pairwise *through-cell* matrix (forward + backward,
:func:`repro.pairwise.matrices2d.through_matrix`). Any cell with
``U < L``, for a lower bound ``L <= OPT`` (e.g. the score of a heuristic
alignment), cannot lie on an optimal path and may be pruned. Every cell of
an optimal path has ``U >= OPT >= L``, so the optimum always survives.

The closer the three sequences, the tighter the pairwise bounds hug the
3-way optimum and the larger the pruned fraction — the divergence sweep of
experiment F5 measures exactly this.

Two representations of the kept region are offered:
:func:`carrillo_lipman_mask` materialises the dense boolean cube
(O(n^3) memory — diagnostics and the reference kernel's tests), while
:func:`carrillo_lipman_tube` stores the per-``(i, j)`` interval hull of
the kept ``k`` values (:class:`~repro.core.tube.PruningTube`, O(n^2)
memory) — the form the production ``pruned`` engine feeds straight into
the wavefront kernel's clamp machinery so pruned cells are never
touched. The hull can only *add* cells relative to the dense mask, so
its safety guarantee is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.core.tube import PruningTube
from repro.pairwise.matrices2d import through_matrix
from repro.util.validation import check_sequences


@dataclass
class PruningStats:
    """Summary of a pruning mask."""

    total_cells: int
    kept_cells: int
    lower_bound: float
    upper_bound_at_origin: float

    @property
    def kept_fraction(self) -> float:
        """Fraction of lattice cells that survive pruning."""
        return self.kept_cells / self.total_cells if self.total_cells else 0.0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of lattice cells eliminated."""
        return 1.0 - self.kept_fraction


def heuristic_lower_bound(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """A valid lower bound on the optimal SP score.

    Takes the better of the center-star and progressive heuristic
    alignments' SP scores — both are feasible alignments, so their scores
    never exceed the optimum.
    """
    from repro.heuristics import align3_centerstar, align3_progressive

    cs = align3_centerstar(sa, sb, sc, scheme)
    pg = align3_progressive(sa, sb, sc, scheme)
    return max(cs.score, pg.score)


def banded_lower_bound(
    sa: str, sb: str, sc: str, scheme: ScoringScheme, band: int = 4
) -> float:
    """A valid lower bound from one thin-band exact sweep.

    The optimum over alignments confined to the scaled-diagonal band is
    the score of a feasible alignment, so it never exceeds the global
    optimum — and for similar sequences (where pruning matters) it
    usually *equals* it, making the Carrillo–Lipman bound as tight as it
    can get. Costs one O(b^2 n) score-only sweep, an order of magnitude
    less than the heuristic alignments' Python-level column merging,
    which on similar triples used to cost more than the full unpruned
    sweep the bound exists to beat. A band too thin to connect the
    corners (very uneven lengths) is doubled until it does; in the worst
    case the band covers the cube and the "bound" is the exact optimum.
    """
    from repro.core.band import band_tube
    from repro.core.dp3d import NEG
    from repro.core.wavefront import wavefront_sweep

    check_sequences((sa, sb, sc), count=3)
    n1, n2, n3 = len(sa), len(sb), len(sc)
    while True:
        tube = band_tube(n1, n2, n3, band)
        score = wavefront_sweep(
            sa, sb, sc, scheme, tube=tube, score_only=True
        ).score
        if score > NEG / 2:
            return float(score)
        band *= 2  # corners disconnected inside the band; widen


def _bound_inputs(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    lower_bound: float | None,
    slack: float,
    default_bound=heuristic_lower_bound,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
    """Shared validation + through-matrices + threshold for both builders."""
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError(
            "Carrillo–Lipman bounds are derived for the linear gap model"
        )
    if slack < 0:
        raise ValueError(f"slack must be >= 0, got {slack}")
    t_ab = through_matrix(sa, sb, scheme)  # (n1+1, n2+1)
    t_ac = through_matrix(sa, sc, scheme)  # (n1+1, n3+1)
    t_bc = through_matrix(sb, sc, scheme)  # (n2+1, n3+1)
    if lower_bound is None:
        lower_bound = default_bound(sa, sb, sc, scheme)
    return t_ab, t_ac, t_bc, float(lower_bound), float(lower_bound) - slack


def carrillo_lipman_mask(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    lower_bound: float | None = None,
    slack: float = 0.0,
) -> tuple[np.ndarray, PruningStats]:
    """Build the boolean keep-mask over the DP cube.

    Parameters
    ----------
    lower_bound:
        A known lower bound ``L <= OPT``. When omitted it is computed from
        the heuristic baselines (:func:`heuristic_lower_bound`).
    slack:
        Loosens the test to ``U >= L - slack`` (``slack >= 0``), retaining
        extra cells; useful to absorb floating-point ties or to study the
        pruning/safety tradeoff.

    Returns
    -------
    (mask, stats):
        ``mask[i, j, k]`` is True for cells that must be evaluated; origin
        and terminal cells are always kept.
    """
    t_ab, t_ac, t_bc, lower_bound, threshold = _bound_inputs(
        sa, sb, sc, scheme, lower_bound, slack
    )
    n1, n2, n3 = len(sa), len(sb), len(sc)

    # Evaluate U slab-by-slab along i to avoid materialising the float cube.
    mask = np.empty((n1 + 1, n2 + 1, n3 + 1), dtype=bool)
    for i in range(n1 + 1):
        u_slab = (
            t_ab[i][:, None] + t_ac[i][None, :] + t_bc
        )  # (n2+1, n3+1)
        mask[i] = u_slab >= threshold
    mask[0, 0, 0] = True
    mask[n1, n2, n3] = True

    u_origin = float(t_ab[0, 0] + t_ac[0, 0] + t_bc[0, 0])
    stats = PruningStats(
        total_cells=mask.size,
        kept_cells=int(mask.sum()),
        lower_bound=float(lower_bound),
        upper_bound_at_origin=u_origin,
    )
    return mask, stats


def carrillo_lipman_tube(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    lower_bound: float | None = None,
    slack: float = 0.0,
) -> tuple[PruningTube, PruningStats]:
    """Build the O(n^2) tube (per-``(i, j)`` ``k``-interval hull) of the
    Carrillo–Lipman keep-region.

    Same parameters and safety guarantee as :func:`carrillo_lipman_mask`
    — the tube keeps a *superset* of the mask's cells (the interval hull
    along ``k``), so every cell of an optimal path survives. Peak
    auxiliary memory is the three O(n^2) through-matrices plus two
    ``(n1+1, n2+1)`` integer planes; the dense cube is never built.

    When no ``lower_bound`` is given it comes from
    :func:`banded_lower_bound` rather than the heuristic alignments the
    mask builder defaults to: one thin exact sweep is both cheaper and
    (on the similar triples that prune well) tighter.

    ``stats.kept_cells`` counts the tube's cells (what a pruned sweep
    will actually evaluate), so it can exceed the dense mask's count
    when the kept set along ``k`` has holes.
    """
    t_ab, t_ac, t_bc, lower_bound, threshold = _bound_inputs(
        sa, sb, sc, scheme, lower_bound, slack,
        default_bound=banded_lower_bound,
    )
    n1, n2, n3 = len(sa), len(sb), len(sc)

    klo = np.zeros((n1 + 1, n2 + 1), dtype=np.intp)
    khi = np.full((n1 + 1, n2 + 1), -1, dtype=np.intp)
    # 2-D prefilter: U(i, j, k) <= t_ab[i, j] + max_k t_ac[i, .] +
    # max_k t_bc[j, .], so rows failing this bound keep no k at all and
    # never need their O(n3) interval scan. On the similar triples that
    # prune well this kills all but a thin diagonal sheet of (i, j)
    # rows, making the build O(n^2 + rows_kept * n3) instead of O(n^3).
    cand = (
        t_ab + t_ac.max(axis=1)[:, None] + t_bc.max(axis=1)[None, :]
    ) >= threshold
    ii, jj = np.nonzero(cand)
    # Scan surviving rows a bounded batch at a time so the (rows, n3+1)
    # bound evaluation stays O(n^2) memory even when nothing prunes.
    batch = max(1, 16 * (n2 + 1))
    for b0 in range(0, len(ii), batch):
        bi = ii[b0 : b0 + batch]
        bj = jj[b0 : b0 + batch]
        keep = (t_ac[bi] + t_bc[bj]) >= (
            threshold - t_ab[bi, bj]
        )[:, None]  # (batch, n3+1)
        any_k = keep.any(axis=1)
        first = keep.argmax(axis=1)
        last = n3 - keep[:, ::-1].argmax(axis=1)
        klo[bi[any_k], bj[any_k]] = first[any_k]
        khi[bi[any_k], bj[any_k]] = last[any_k]

    tube = PruningTube(klo=klo, khi=khi, n3=n3)
    tube.keep_cell(0, 0, 0)
    tube.keep_cell(n1, n2, n3)

    u_origin = float(t_ab[0, 0] + t_ac[0, 0] + t_bc[0, 0])
    stats = PruningStats(
        total_cells=tube.total_cells,
        kept_cells=tube.kept_cells,
        lower_bound=float(lower_bound),
        upper_bound_at_origin=u_origin,
    )
    return tube, stats


def pairwise_upper_bound(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """The Carrillo–Lipman upper bound on the optimal SP score: the sum of
    the three optimal pairwise scores. Useful as a sanity envelope
    (``L <= OPT <= this``)."""
    from repro.pairwise.nw import score2

    return (
        score2(sa, sb, scheme)
        + score2(sa, sc, scheme)
        + score2(sb, sc, scheme)
    )
