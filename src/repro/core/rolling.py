"""Score-only, O(n^2)-memory 3-D DP engines.

Two independent formulations are provided:

* :func:`wavefront score-only <repro.core.wavefront.score3_wavefront>` keeps
  four anti-diagonal planes alive (imported here for symmetry);
* :func:`slab_sweep` (this module) rolls along the first sequence, keeping
  two ``(n2+1) x (n3+1)`` slabs. Within slab ``i``, cross-slab contributions
  form a precomputable "base" envelope, and the remaining in-slab moves
  (B, C, BC) are a 2-D lattice DP computed by 2-D anti-diagonal
  vectorisation.

The slab engine exists for three reasons: it is an *independent* code path
against which the plane engine is validated; its memory traffic is
cache-friendlier for strongly elongated cubes; and its per-level slabs are
exactly what the Hirschberg divide-and-conquer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.core.workspace import PlaneWorkspace
from repro.util.validation import check_sequences


@dataclass
class SlabResult:
    """Output of a slab sweep."""

    score: float
    slabs: dict[int, np.ndarray]
    cells_computed: int


def slab_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    want_levels: Iterable[int] = (),
    workspace: PlaneWorkspace | None = None,
) -> SlabResult:
    """Roll the 3-D DP along ``sa``, returning the final score.

    Parameters
    ----------
    want_levels:
        ``i`` levels whose full forward slab ``F[i, :, :]`` should be copied
        out (each is ``(n2+1, n3+1)``); used by Hirschberg.
    workspace:
        Optional :class:`~repro.core.workspace.PlaneWorkspace` supplying
        the slab and envelope buffers, so repeated sweeps (Hirschberg
        recursion) skip the per-call allocations. Not thread-safe.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("slab_sweep implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    want = set(int(v) for v in want_levels)
    for lvl in want:
        if not 0 <= lvl <= n1:
            raise ValueError(f"capture level {lvl} outside [0, {n1}]")

    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    # Padded slabs: cell (j, k) lives at [j+1, k+1]; pad row/col hold NEG.
    ws = PlaneWorkspace((0, n2, n3)) if workspace is None else workspace
    prev, cur, base, ab, ac, bc, tmp = ws.slab_buffers(n2, n3)
    # Substitution envelopes. Row/col 0 pair with NEG pad reads, so their
    # zeros never win; the ``bc`` term and the zero borders are constant
    # across ``i`` and set once, only the ``i-1`` profile rows roll.
    ab.fill(0.0)
    ac.fill(0.0)
    bc.fill(0.0)
    if n2 and n3:
        bc[1:, 1:] = sbc
    captured: dict[int, np.ndarray] = {}
    cells = 0

    for i in range(n1 + 1):
        cur[:] = NEG
        if i == 0:
            base[:] = NEG
            base[0, 0] = 0.0
        else:
            # Cross-slab envelope: moves A, AB, AC, ABC from slab i-1.
            p_00 = prev[1:, 1:]  # (j,   k)   -> move A
            p_10 = prev[:-1, 1:]  # (j-1, k)   -> move AB
            p_01 = prev[1:, :-1]  # (j,   k-1) -> move AC
            p_11 = prev[:-1, :-1]  # (j-1, k-1) -> move ABC
            if n2:
                ab[1:, :] = sab[i - 1, :, None]
            if n3:
                ac[:, 1:] = sac[i - 1, None, :]
            # In-place running max, same addition order as the original
            # expression tree, so scores stay bit-identical.
            np.add(p_00, g2, out=base)
            np.add(p_10, ab, out=tmp)
            tmp += g2
            np.maximum(base, tmp, out=base)
            np.add(p_01, ac, out=tmp)
            tmp += g2
            np.maximum(base, tmp, out=base)
            np.add(p_11, ab, out=tmp)
            tmp += ac
            tmp += bc
            np.maximum(base, tmp, out=base)

        # In-slab 2-D DP over anti-diagonals t = j + k.
        for t in range(n2 + n3 + 1):
            jlo = max(0, t - n3)
            jhi = min(n2, t)
            if jlo > jhi:
                continue
            js = np.arange(jlo, jhi + 1)
            ks = t - js
            vals = base[js, ks].copy()
            if t > 0:
                w_b = cur[js, ks + 1] + g2  # move B: (j-1, k)
                w_c = cur[js + 1, ks] + g2  # move C: (j, k-1)
                np.maximum(vals, w_b, out=vals)
                np.maximum(vals, w_c, out=vals)
                if n2 and n3:
                    jc = np.clip(js - 1, 0, n2 - 1)
                    kc = np.clip(ks - 1, 0, n3 - 1)
                    w_bc = cur[js, ks] + sbc[jc, kc] + g2  # move BC
                    np.maximum(vals, w_bc, out=vals)
            cur[js + 1, ks + 1] = vals
            cells += len(js)

        if i in want:
            captured[i] = cur[1:, 1:].copy()
        prev, cur = cur, prev

    score = float(prev[n2 + 1, n3 + 1])
    return SlabResult(score=score, slabs=captured, cells_computed=cells)


def score3_slab(sa: str, sb: str, sc: str, scheme: ScoringScheme) -> float:
    """Optimal SP score via the slab engine."""
    return slab_sweep(sa, sb, sc, scheme).score


def forward_slab(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    level: int,
    engine: str = "wavefront",
    workspace: PlaneWorkspace | None = None,
) -> np.ndarray:
    """Forward scores ``F[level, j, k]`` for all ``(j, k)``.

    ``engine`` selects the implementation: ``"wavefront"`` (default; plane
    sweep with row capture) or ``"slab"`` (this module's roll). The
    returned slab is always freshly allocated (never a workspace view),
    so callers may hold it across further sweeps.
    """
    if engine == "slab":
        return slab_sweep(
            sa, sb, sc, scheme, want_levels=(level,), workspace=workspace
        ).slabs[level]
    if engine == "wavefront":
        from repro.core.wavefront import wavefront_sweep

        res = wavefront_sweep(
            sa,
            sb,
            sc,
            scheme,
            score_only=True,
            capture_level=level,
            workspace=workspace,
        )
        assert res.captured_slab is not None
        return res.captured_slab
    raise ValueError(f"unknown engine {engine!r}")


def backward_slab(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    level: int,
    engine: str = "wavefront",
    workspace: PlaneWorkspace | None = None,
) -> np.ndarray:
    """Backward scores ``B[level, j, k]``: the optimal score of aligning the
    suffixes ``sa[level:]``, ``sb[j:]``, ``sc[k:]``.

    Computed as a forward sweep over the reversed sequences;
    ``B[level, j, k] == F_rev[n1-level, n2-j, n3-k]``.
    """
    n1, n2, n3 = len(sa), len(sb), len(sc)
    rev = forward_slab(
        sa[::-1],
        sb[::-1],
        sc[::-1],
        scheme,
        n1 - level,
        engine=engine,
        workspace=workspace,
    )
    return rev[::-1, ::-1].copy()
