"""Reusable buffer workspace for the wavefront plane kernel.

:func:`repro.core.wavefront.compute_plane_rows` is the hot inner loop of
every engine in this repo. Its original form allocated ~10 fresh arrays
per plane — index grids, validity masks, three substitution gathers and a
7-candidate stack that is seven times the plane's memory — and the
Hirschberg divide-and-conquer additionally re-allocated all four plane
buffers at every recursion node. For the repeated-small-plane workloads
that dominate Hirschberg (and the pool's batched jobs), that allocation
traffic — and the fixed Python-level cost of the ~40 NumPy calls per
plane — rivals the arithmetic itself.

:class:`PlaneWorkspace` removes both. One workspace owns, grow-only:

* the four padded rotating **plane buffers** (``(n1+2, n2+2)`` each),
* 2-D **kernel scratch** — the ``k`` lattice, validity masks, gather
  targets, the running-max buffers and a flat gather-index buffer,
* **per-sweep tables** built once per (profile-matrices, dims) binding
  and reused by every plane of the sweep: clip-padded substitution
  tables (``tab_ab``/``tab_ac``/``tab_bc``, so the AB term becomes a
  plain view and the AC/BC terms one fused flat ``take``), the
  ``i + j`` grid (``K`` in a single subtract) and flat-offset rows for
  the mask/table gathers,
* the rolling-slab engine's **slab buffers** (``repro.core.rolling``).

Buffers are sized to the largest shape seen so far and sliced down to
views per sweep, so *changing cube shapes can safely share one
workspace*: every consumed region is (re)initialised by the sweep or the
profile binding that uses it, which the workspace-reuse property tests
(``tests/test_workspace.py``) verify bit-for-bit against fresh runs.

Concurrency contract
--------------------
A workspace is **not** thread-safe and must not be shared by two
concurrently-running kernel invocations. Each parallel worker (thread or
process) owns its own workspace; the engines in :mod:`repro.parallel`
follow this rule. Sharing one workspace across *sequential* sweeps —
Hirschberg recursion, the persistent pool's job loop — is the point.

The profile binding caches by **object identity** (the workspace keeps
references, so ids cannot be recycled). Mutating a profile matrix in
place between planes of one sweep is therefore not supported — no engine
does this.
"""

from __future__ import annotations

import numpy as np

from repro.core.dp3d import NEG


class PlaneWorkspace:
    """Grow-only preallocated buffers for wavefront/slab sweeps.

    Parameters
    ----------
    capacity:
        Initial ``(n1, n2, n3)`` sequence-length capacity. Sweeps beyond
        it grow the buffers (amortised: capacity never shrinks), so
        ``PlaneWorkspace()`` is a valid lazy starting point and
        ``PlaneWorkspace(pool_capacity)`` pre-sizes everything once.

    Attributes
    ----------
    grows:
        Number of times the buffers were (re)allocated after
        construction — 0 in steady state, which is what the perf
        benchmark (``benchmarks/bench_kernel.py``) exploits.
    """

    def __init__(self, capacity: tuple[int, int, int] = (0, 0, 0)):
        c1, c2, c3 = (int(c) for c in capacity)
        if min(c1, c2, c3) < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._c1 = self._c2 = self._c3 = -1
        self.grows = -1  # the constructor's reserve() is not a "grow"
        self._planes: list[np.ndarray] | None = None
        self._slabs: list[np.ndarray] | None = None
        self.reserve(c1, c2, c3)

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------

    def reserve(self, n1: int, n2: int, n3: int) -> "PlaneWorkspace":
        """Ensure every buffer can serve a ``(n1, n2, n3)`` sweep.

        A no-op (three comparisons) when the workspace is already big
        enough — the kernel calls this on every plane.
        """
        if n1 <= self._c1 and n2 <= self._c2 and n3 <= self._c3:
            return self
        self._c1 = max(self._c1, int(n1))
        self._c2 = max(self._c2, int(n2))
        self._c3 = max(self._c3, int(n3))
        self.grows += 1
        c1, c2, c3 = self._c1, self._c2, self._c3
        self.rows = np.arange(c1 + 1)
        self.cols = np.arange(c2 + 1)
        # 2-D kernel scratch, sliced to the plane bounding box per call.
        shape = (c1 + 1, c2 + 1)
        self.k = np.empty(shape, dtype=np.intp)
        self.kc = np.empty(shape, dtype=np.intp)
        self.idx = np.empty(shape, dtype=np.intp)
        self.valid = np.empty(shape, dtype=bool)
        self.tmp = np.empty(shape, dtype=bool)
        self.cand = np.empty(shape)
        self.moves = np.empty(shape, dtype=np.int8)
        # Fused-gather scratch: AC/BC indices and values live stacked in
        # one flat buffer each, so both substitution terms come out of a
        # single ``take`` per plane (box_views reshapes them (2, h, w)).
        self._idx2_flat = np.empty(2 * (c1 + 1) * (c2 + 1), dtype=np.intp)
        self._gacbc_flat = np.empty(2 * (c1 + 1) * (c2 + 1))
        # Per-sweep tables, filled by bind_profiles(). tab_ac and tab_bc
        # are carved out of one flat allocation (the fused gather's
        # source), with tab_bc's rows offset past tab_ac.
        self.d0 = np.empty(shape, dtype=np.intp)  # i + j
        self.m0 = np.empty(shape, dtype=np.intp)  # mask flat offsets
        self.tab_ab = np.empty(shape)
        ac_len = (c1 + 1) * (c3 + 1)
        self._tab_acbc_flat = np.empty(ac_len + (c2 + 1) * (c3 + 1))
        self.tab_ac = self._tab_acbc_flat[:ac_len].reshape(c1 + 1, c3 + 1)
        self.tab_bc = self._tab_acbc_flat[ac_len:].reshape(c2 + 1, c3 + 1)
        # Flat row/col offsets into the concatenated table; rows
        # pre-shaped (c1+1, 1) so a plain slice broadcasts.
        self.rows_tac = (self.rows * (c3 + 1)).reshape(-1, 1)
        self.cols_tbc = self.cols * (c3 + 1) + ac_len
        # Box-view cache (see box_views); a grow moves every buffer.
        self._views: dict[tuple[int, int, int, int], tuple] = {}
        # A grow moves the tables, so any existing binding is stale.
        self._psab: np.ndarray | None = None
        self._psac: np.ndarray | None = None
        self._psbc: np.ndarray | None = None
        self._pdims: tuple[int, int, int] | None = None
        # Plane/slab buffers are lazy; a grow invalidates any existing
        # (now too small) ones.
        self._planes = None
        self._slabs = None
        return self

    @property
    def capacity(self) -> tuple[int, int, int]:
        """Current ``(n1, n2, n3)`` sequence-length capacity."""
        return (self._c1, self._c2, self._c3)

    def box_views(
        self, row_lo: int, row_hi: int, jlo: int, jhi: int
    ) -> tuple:
        """The kernel's view bundle for one plane bounding box.

        Slicing ~15 views per plane costs real time at small plane
        sizes, and sweeps revisit the same boxes (one per ``d``, and
        identically across repeated same-shape sweeps), so the tuples
        are memoised. Views stay valid across
        :meth:`bind_profiles` (tables are refilled in place); a grow
        reallocates every buffer and clears the cache.

        Returns ``(k, kc, valid, tmp, fi, fi2, gv2, cand, moves, d0,
        gab, rows_tac, cols_tbc)`` — scratch sliced at the origin to the
        box shape, tables sliced at the box's absolute position. ``fi2``
        and ``gv2`` are the C-contiguous ``(2, h, w)`` index/value pair
        of the fused AC/BC gather (``gv2[0]`` is AC, ``gv2[1]`` BC).
        """
        key = (row_lo, row_hi, jlo, jhi)
        v = self._views.get(key)
        if v is None:
            h = row_hi - row_lo + 1
            w = jhi - jlo + 1
            rs = slice(row_lo, row_hi + 1)
            cs = slice(jlo, jhi + 1)
            v = (
                self.k[:h, :w],
                self.kc[:h, :w],
                self.valid[:h, :w],
                self.tmp[:h, :w],
                self.idx[:h, :w],
                self._idx2_flat[: 2 * h * w].reshape(2, h, w),
                self._gacbc_flat[: 2 * h * w].reshape(2, h, w),
                self.cand[:h, :w],
                self.moves[:h, :w],
                self.d0[rs, cs],
                self.tab_ab[rs, cs],
                self.rows_tac[rs],
                self.cols_tbc[cs],
            )
            self._views[key] = v
        return v

    # ------------------------------------------------------------------
    # Per-sweep profile binding
    # ------------------------------------------------------------------

    def bound_to(
        self,
        sab: np.ndarray,
        sac: np.ndarray,
        sbc: np.ndarray,
        dims: tuple[int, int, int],
    ) -> bool:
        """True when the sweep tables are already built for exactly
        these profile matrices (by identity) and dims."""
        return (
            self._psab is sab
            and self._psac is sac
            and self._psbc is sbc
            and self._pdims == dims
        )

    def bind_profiles(
        self,
        sab: np.ndarray,
        sac: np.ndarray,
        sbc: np.ndarray,
        dims: tuple[int, int, int],
    ) -> None:
        """Build the per-sweep tables for one (profiles, dims) sweep.

        Called lazily by the kernel on the first plane of a sweep; every
        later plane hits the identity check in :meth:`bound_to` and pays
        nothing. The tables are the *clip-padded* substitution matrices
        (first row/column duplicated, exactly ``clip(i-1, 0, n-1)``
        indexing), so per plane the AB term is a plain table view and
        the AC/BC terms come out of one fused flat ``take`` over the
        concatenated table — the index clamps, multiplies and fancy
        gathers all happen once here instead of once per plane.
        """
        n1, n2, n3 = dims
        self.reserve(n1, n2, n3)
        # i + j grid: per plane, K = d - d0 in one subtract.
        np.add(
            self.rows[: n1 + 1, None],
            self.cols[None, : n2 + 1],
            out=self.d0[: n1 + 1, : n2 + 1],
        )
        # Flat offsets of (i, j, 0) in a C-order (n1+1, n2+1, n3+1)
        # cube — the mask-gather index is m0 + clip(k, 0, n3).
        np.multiply(
            self.rows[: n1 + 1, None],
            (n2 + 1) * (n3 + 1),
            out=self.m0[: n1 + 1, : n2 + 1],
        )
        self.m0[: n1 + 1, : n2 + 1] += self.cols[None, : n2 + 1] * (n3 + 1)
        # Clip-padded substitution tables. Where a sequence is empty the
        # old kernel substituted zeros; padding whole-table zeros keeps
        # that bit-identical.
        tab = self.tab_ab[: n1 + 1, : n2 + 1]
        if n1 and n2:
            tab[1:, 1:] = sab
            tab[0, 1:] = sab[0]
            tab[1:, 0] = sab[:, 0]
            tab[0, 0] = sab[0, 0]
        else:
            tab.fill(0.0)
        tac = self.tab_ac[: n1 + 1, : n3 + 1]
        if n1 and n3:
            tac[1:, 1:] = sac
            tac[0, 1:] = sac[0]
            tac[1:, 0] = sac[:, 0]
            tac[0, 0] = sac[0, 0]
        else:
            tac.fill(0.0)
        tbc = self.tab_bc[: n2 + 1, : n3 + 1]
        if n2 and n3:
            tbc[1:, 1:] = sbc
            tbc[0, 1:] = sbc[0]
            tbc[1:, 0] = sbc[:, 0]
            tbc[0, 0] = sbc[0, 0]
        else:
            tbc.fill(0.0)
        self._psab, self._psac, self._psbc = sab, sac, sbc
        self._pdims = dims

    # ------------------------------------------------------------------
    # Plane buffers (wavefront engine)
    # ------------------------------------------------------------------

    def planes_for(self, n1: int, n2: int) -> list[np.ndarray]:
        """The four rotating padded plane buffers for an ``(n1, n2)``
        sweep, as NEG-filled ``(n1+2, n2+2)`` views.

        Filling happens here (the sweep's O(plane) initialisation, same
        as the old ``np.full`` allocation) — what is saved is the
        allocation itself.
        """
        self.reserve(n1, n2, 0)
        if self._planes is None:
            self._planes = [
                np.empty((self._c1 + 2, self._c2 + 2)) for _ in range(4)
            ]
        views = [p[: n1 + 2, : n2 + 2] for p in self._planes]
        for v in views:
            v.fill(NEG)
        return views

    # ------------------------------------------------------------------
    # Slab buffers (rolling engine)
    # ------------------------------------------------------------------

    def slab_buffers(
        self, n2: int, n3: int
    ) -> tuple[np.ndarray, ...]:
        """Buffers for one :func:`repro.core.rolling.slab_sweep`:
        ``(prev, cur, base, env_ab, env_ac, env_bc, tmp)``.

        ``prev``/``cur`` are NEG-filled padded ``(n2+2, n3+2)`` views;
        the rest are uninitialised ``(n2+1, n3+1)`` views the sweep
        fully (re)writes before reading.
        """
        self.reserve(0, n2, n3)
        if self._slabs is None:
            c2, c3 = self._c2, self._c3
            self._slabs = [np.empty((c2 + 2, c3 + 2)) for _ in range(2)] + [
                np.empty((c2 + 1, c3 + 1)) for _ in range(5)
            ]
        prev = self._slabs[0][: n2 + 2, : n3 + 2]
        cur = self._slabs[1][: n2 + 2, : n3 + 2]
        prev.fill(NEG)
        cur.fill(NEG)
        rest = tuple(b[: n2 + 1, : n3 + 1] for b in self._slabs[2:])
        return (prev, cur) + rest
