"""High-level entry points for three-sequence alignment.

:func:`align3` dispatches to the engine that fits the request:

===============  =============================================================
method           engine
===============  =============================================================
``auto``         affine scheme -> ``affine``; otherwise a cost model
                 (:func:`select_method`) estimates pairwise identity from
                 k-mer sketches and picks ``wavefront`` (small cubes or
                 diverged triples), ``pruned`` (similar triples, where the
                 Carrillo–Lipman tube pays for itself), ``banded``
                 (near-identical, length-matched triples) or
                 ``hirschberg`` (cubes whose move cube exceeds
                 :data:`AUTO_HIRSCHBERG_CELLS`). ``auto_policy="cells"``
                 restores the legacy cells-only split.
``dp3d``         scalar reference full-matrix DP
``wavefront``    vectorised full-matrix plane sweep
``hirschberg``   linear-space divide and conquer
``pruned``       Carrillo–Lipman tube-pruned wavefront (O(n^2) bound
                 memory; pruned cells are never touched)
``banded``       certified band doubling around the main diagonal
``affine``       7-state affine-gap DP (requires ``scheme.gap_open != 0``)
``shared``       multiprocess shared-memory wavefront (per-plane barrier)
``blocks``       block-tiled multiprocess wavefront: row-slab x plane-band
                 blocks streamed over per-worker readiness counters
                 (a fraction of the synchronisation of ``shared``)
``threads``      thread-pool wavefront (block-tiled)
``anchored``     anchor-discovering divide and conquer: shared unique
                 k-mers are chained into a cube-splitting anchor chain
                 (:mod:`repro.anchor`), each sub-cube solved by the
                 engine :func:`select_method` picks for it; low-identity
                 inputs fall back to the unanchored path. Passing
                 ``constraints=`` to any linear-gap method enters the
                 same chain solver with a user-supplied chain instead
                 (*constrained* alignment — optimal subject to the
                 constraints).
===============  =============================================================

(``tests/test_api.py`` asserts every :data:`AVAILABLE_METHODS` entry
appears in this table, so it cannot drift from the dispatcher again.)

Every method above except ``affine`` solves the same linear-gap DP and
returns bit-identical rows and scores (the engines reproduce the
reference argmax tie-breaks exactly; pruning keeps every cell of every
optimal path). The result cache exploits this: keys carry the
*equivalence class* of the resolved method
(:func:`repro.cache.method_key_class`), so a request served as ``auto``,
``wavefront`` or ``pruned`` shares one cache entry.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Sequence

from repro.core.scoring import ScoringScheme, default_scheme_for
from repro.core.types import Alignment3
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.resilience import degrade as _degrade
from repro.resilience.errors import DegradationWarning, DegradedRun
from repro.seqio.alphabet import guess_common_alphabet
from repro.util.validation import check_sequences

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache uses core)
    from repro.cache import ResultCache

#: Cube size above which ``auto`` prefers the linear-space engine (the
#: full-matrix engines' move cube no longer fits the auto budget).
AUTO_HIRSCHBERG_CELLS = 8_000_000

#: Cube size below which ``auto`` never bothers pruning: the tube build
#: costs three pairwise DPs plus two heuristic alignments, which a plain
#: wavefront over a small cube beats outright.
AUTO_PRUNE_MIN_CELLS = 250_000

#: Minimum estimated min-pairwise identity before ``auto`` picks the
#: pruned engine. Below this the Carrillo–Lipman bound keeps most of the
#: cube and the bound build is pure overhead.
AUTO_PRUNE_MIN_IDENTITY = 0.7

#: Above this identity — with near-equal lengths — the optimum hugs the
#: scaled diagonal so tightly that the banded engine certifies with its
#: initial thin band, skipping the heuristic lower-bound alignments the
#: pruned engine needs.
AUTO_BANDED_MIN_IDENTITY = 0.96

#: Supported ``auto_policy`` values for :func:`align3`.
AUTO_POLICIES = ("similarity", "cells")

AVAILABLE_METHODS = (
    "auto",
    "dp3d",
    "wavefront",
    "hirschberg",
    "pruned",
    "banded",
    "affine",
    "shared",
    "blocks",
    "threads",
    "anchored",
)

#: Throughput the :data:`AUTO_PRUNE_MIN_CELLS` constant was tuned at.
#: ``select_method``'s optional ``cells_per_s`` hint scales the
#: threshold relative to this (see :data:`AUTO_HINT_CLAMP`).
AUTO_REFERENCE_CELLS_PER_S = 2_000_000.0

#: Bounds on the hint scaling factor — a cold or absurd EWMA reading
#: must not swing engine selection by more than this in either direction.
AUTO_HINT_CLAMP = (0.25, 4.0)


def _kmer_set(seq: str, k: int) -> set[str]:
    return {seq[i : i + k] for i in range(len(seq) - k + 1)}


def _mash_identity(kmers_a: set, kmers_b: set, k: int) -> float:
    import math

    inter = len(kmers_a & kmers_b)
    if not inter:
        return 0.0
    j = inter / len(kmers_a | kmers_b)
    return max(0.0, min(1.0, 1.0 + math.log(2.0 * j / (1.0 + j)) / k))


def estimate_identity(sa: str, sb: str, k: int = 8) -> float:
    """Cheap indel-robust identity estimate in ``[0, 1]``.

    Compares the k-mer sets of the two sequences and converts their
    Jaccard similarity ``j`` to an identity estimate via the Mash
    distance ``1 + ln(2j / (1 + j)) / k``. Runs in O(n) time and memory
    — three orders of magnitude cheaper than any alignment — which is
    what lets :func:`select_method` consult it on every request.
    Sequences shorter than ``k`` fall back to positional identity over
    the common prefix length.
    """
    if min(len(sa), len(sb)) < k:
        if not sa or not sb:
            return 1.0 if sa == sb else 0.0
        n = min(len(sa), len(sb))
        same = sum(1 for x, y in zip(sa, sb) if x == y)
        return same / n
    return _mash_identity(_kmer_set(sa, k), _kmer_set(sb, k), k)


def _min_pairwise_identity(sa: str, sb: str, sc: str, k: int = 8) -> float:
    """``min(estimate_identity(...))`` over the three pairs, building each
    sequence's k-mer set once instead of twice (the three pairwise calls
    used to rebuild every set, doubling the dominant cost of ``auto``)."""
    seqs = (sa, sb, sc)
    kmers = {
        s: _kmer_set(s, k) for s in set(seqs) if len(s) >= k
    }
    best = 1.0
    for x, y in ((sa, sb), (sa, sc), (sb, sc)):
        if x in kmers and y in kmers:
            ident = _mash_identity(kmers[x], kmers[y], k)
        else:
            ident = estimate_identity(x, y, k)
        if ident < best:
            best = ident
    return best


def select_method(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    policy: str = "similarity",
    *,
    cells_per_s: float | None = None,
) -> tuple[str, dict]:
    """Resolve ``method="auto"`` to a concrete linear-gap engine.

    The ``similarity`` policy estimates the minimum pairwise identity of
    the triple (:func:`estimate_identity`) and picks the engine whose
    cost model wins for that regime; the ``cells`` policy is the legacy
    cube-size-only split (wavefront below
    :data:`AUTO_HIRSCHBERG_CELLS`, hirschberg above). Affine schemes are
    resolved by the caller before this runs.

    ``cells_per_s`` is an optional *observed* plain-sweep throughput (the
    serve tier passes its admission controller's EWMA): on hardware
    faster than the reference the plain wavefront stays cheap for larger
    cubes, so the prune threshold rises proportionally (clamped to
    :data:`AUTO_HINT_CLAMP`); on slower hardware pruning pays sooner.

    Returns ``(method, selection)`` where ``selection`` records the
    inputs of the decision for ``meta["auto"]``.
    """
    if policy not in AUTO_POLICIES:
        raise ValueError(
            f"unknown auto_policy {policy!r}; available: {AUTO_POLICIES}"
        )
    n1, n2, n3 = len(sa), len(sb), len(sc)
    cells = (n1 + 1) * (n2 + 1) * (n3 + 1)
    selection: dict = {"policy": policy, "cells": cells}
    if policy == "cells":
        method = "wavefront" if cells <= AUTO_HIRSCHBERG_CELLS else "hirschberg"
        selection["reason"] = (
            f"cells {'<=' if method == 'wavefront' else '>'} "
            f"{AUTO_HIRSCHBERG_CELLS}"
        )
        return method, selection

    prune_min_cells = AUTO_PRUNE_MIN_CELLS
    if cells_per_s is not None and cells_per_s > 0:
        lo, hi = AUTO_HINT_CLAMP
        factor = min(hi, max(lo, cells_per_s / AUTO_REFERENCE_CELLS_PER_S))
        prune_min_cells = int(AUTO_PRUNE_MIN_CELLS * factor)
        selection["cells_per_s_hint"] = round(cells_per_s, 1)
        selection["prune_min_cells"] = prune_min_cells
    if cells <= prune_min_cells:
        selection["reason"] = f"small cube (<= {prune_min_cells} cells)"
        return "wavefront", selection
    identity = _min_pairwise_identity(sa, sb, sc)
    selection["identity"] = round(identity, 4)
    if cells > AUTO_HIRSCHBERG_CELLS:
        # The traceback move cube is dense for every full-matrix engine
        # (pruning spares work, not the cube), so past the budget only
        # the linear-space engine is safe regardless of similarity.
        selection["reason"] = f"cells > {AUTO_HIRSCHBERG_CELLS}"
        return "hirschberg", selection
    spread = abs(n1 - n2) + abs(n1 - n3) + abs(n2 - n3)
    if identity >= AUTO_BANDED_MIN_IDENTITY and spread <= max(n1, n2, n3) // 8:
        selection["reason"] = (
            f"identity >= {AUTO_BANDED_MIN_IDENTITY} and near-equal lengths"
        )
        return "banded", selection
    if identity >= AUTO_PRUNE_MIN_IDENTITY:
        selection["reason"] = f"identity >= {AUTO_PRUNE_MIN_IDENTITY}"
        return "pruned", selection
    selection["reason"] = f"identity < {AUTO_PRUNE_MIN_IDENTITY}"
    return "wavefront", selection


def resolve_scheme(
    seqs: Sequence[str], scheme: ScoringScheme | None = None
) -> ScoringScheme:
    """``scheme`` if given, else the default scheme for the guessed alphabet.

    The alphabet is guessed per sequence (empty sequences are skipped);
    mixing alphabets — a DNA read next to a protein chain — raises
    ``ValueError`` instead of silently scoring everything under whichever
    single alphabet happens to accept the concatenation.
    """
    if scheme is not None:
        return scheme
    return default_scheme_for(guess_common_alphabet(seqs))


#: Backwards-compatible private alias (pre-1.1 internal name).
_resolve_scheme = resolve_scheme


def align3(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme | None = None,
    method: str = "auto",
    workers: int = 2,
    allow_degrade: bool = True,
    cache: "ResultCache | None" = None,
    auto_policy: str = "similarity",
    constraints=None,
    cells_per_s_hint: float | None = None,
) -> Alignment3:
    """Optimal three-sequence alignment.

    Parameters
    ----------
    sa, sb, sc:
        The three sequences.
    scheme:
        Scoring scheme; when omitted, a default is chosen from the guessed
        alphabet (BLOSUM62 for protein, 5/-4 for nucleotides).
    method:
        One of :data:`AVAILABLE_METHODS`.
    workers:
        Worker count for the ``shared``/``blocks``/``threads`` methods.
    allow_degrade:
        When the requested engine's estimated footprint exceeds the memory
        budget (see :mod:`repro.resilience.degrade`), True (default)
        transparently walks the degradation ladder down to an engine that
        fits — still exact, recorded in ``meta["degraded_from"]`` and a
        :class:`DegradationWarning`. False raises :class:`DegradedRun`
        instead of switching engines.
    cache:
        Optional :class:`repro.cache.ResultCache`. When given, the request
        is looked up by its content digest before any engine runs; a hit
        returns the stored alignment (bit-identical rows/score, meta
        modulo timing, ``meta["cache"]["hit"] = True``) and a miss stores
        the computed result. Keys are built from the *resolved* method's
        equivalence class (:func:`repro.cache.method_key_class`) — all
        exact linear-gap engines share one entry, so ``auto`` and
        ``wavefront`` requests for the same triple no longer compute and
        store the same alignment twice. Entries written by older
        releases (keyed on the raw method string) are found by a
        fallback probe and re-homed under the class key.
    auto_policy:
        How ``method="auto"`` picks an engine: ``"similarity"``
        (default) uses the identity cost model of :func:`select_method`;
        ``"cells"`` restores the legacy cube-size-only split.
    constraints:
        Optional anchor chain the alignment must pass through — an
        iterable of ``(i, j, k, length)`` tuples (or ``{"i": ...}``
        dicts), validated, sorted and checked for chain consistency by
        :func:`repro.anchor.normalize_constraints`. A non-empty chain
        switches to *constrained* mode (cube-chain decomposition,
        optimal subject to the constraints, linear-gap only; ``method``
        then names the per-sub-cube engine or ``"auto"``). ``None`` or
        ``()`` leaves behaviour — and cache keys — exactly as before.
        ``meta["anchor"]`` records the decomposition.
    cells_per_s_hint:
        Optional observed plain-sweep throughput forwarded to
        :func:`select_method` so ``auto`` thresholds adapt to the
        machine (the serve tier wires its admission EWMA in here);
        recorded in ``meta["auto"]["cells_per_s_hint"]``.

    Returns
    -------
    Alignment3
        The optimal alignment; ``meta`` records the engine, cell counts and
        wall time.

    Examples
    --------
    >>> from repro import align3
    >>> aln = align3("GATTACA", "GATCA", "GATTA")
    >>> aln.sequences()
    ('GATTACA', 'GATCA', 'GATTA')
    """
    check_sequences((sa, sb, sc), count=3)
    if method not in AVAILABLE_METHODS:
        raise ValueError(
            f"unknown method {method!r}; available: {AVAILABLE_METHODS}"
        )
    if auto_policy not in AUTO_POLICIES:
        raise ValueError(
            f"unknown auto_policy {auto_policy!r}; available: {AUTO_POLICIES}"
        )
    scheme = resolve_scheme((sa, sb, sc), scheme)

    # Constraint normalisation decides the dispatch family up front:
    # a non-empty chain forces the chain solver regardless of ``method``
    # (which then names the per-sub-cube engine), and ``anchored``
    # without constraints is the chain solver in discovery mode. Empty
    # constraints are indistinguishable from no constraints — same
    # engines, same cache keys, bit-identical results.
    from repro.anchor.model import normalize_constraints

    constraints = normalize_constraints(
        constraints, (len(sa), len(sb), len(sc))
    )
    chain_mode = None
    if constraints:
        chain_mode = "constrained"
    elif method == "anchored":
        chain_mode = "anchored"
    if chain_mode is not None and scheme.is_affine:
        raise ValueError(
            "constrained/anchored alignment implements the linear gap "
            "model but the scheme has a nonzero gap_open"
        )
    # Resolve ``auto`` *before* touching the cache: the pre-1.x code keyed
    # on the raw method string, so ``auto`` and the engine it resolved to
    # stored the same bit-identical alignment under two different keys
    # (and a degraded run was stored under the un-degraded key). Keys now
    # carry the resolved method's equivalence class instead. Chain-mode
    # requests skip this: engine selection happens per sub-cube inside
    # the solver.
    requested = method
    selection = None
    if method == "auto" and chain_mode is None:
        if scheme.is_affine:
            method = "affine"
        else:
            method, selection = select_method(
                sa, sb, sc, scheme, policy=auto_policy,
                cells_per_s=cells_per_s_hint,
            )
    if scheme.is_affine and method != "affine":
        raise ValueError(
            f"method {method!r} implements the linear gap model but the "
            "scheme has a nonzero gap_open; use method='affine'"
        )

    plan = None
    if chain_mode is None and method in _degrade.LADDER:
        plan = _degrade.plan_method(
            method, (len(sa), len(sb), len(sc))
        )

    cache_key = None
    if cache is not None:
        from repro.cache import method_key_class, request_key

        if chain_mode == "anchored":
            # Discovery is deterministic in the sequences, so anchored
            # results are content-addressable — but they are *not*
            # interchangeable with the exact class (anchors constrain
            # the optimum), hence their own key class.
            key_method = "anchored"
        elif chain_mode == "constrained":
            # Every per-segment engine is exact and bit-identical, so a
            # constrained result is engine-independent; the constraint
            # digest below separates it from unconstrained entries.
            key_method = "exact"
        else:
            key_method = method_key_class(method)
        cache_key = request_key(
            (sa, sb, sc), scheme, "global", key_method,
            constraints=constraints,
        )
        hit = cache.get(cache_key)
        if hit is None and requested != key_method and chain_mode is None:
            # Migration-safe probe: entries written by older releases are
            # keyed on the raw requested method string. Re-home a hit
            # under the class key so the legacy key ages out naturally.
            # (Chain-mode requests never had legacy entries, and probing
            # without the constraint digest would alias an unconstrained
            # result onto a constrained request.)
            legacy_key = request_key((sa, sb, sc), scheme, "global", requested)
            hit = cache.get(legacy_key)
            if hit is not None:
                cache.put(cache_key, hit)
        if hit is not None:
            hit.meta["cache"] = {"hit": True, "key": cache_key}
            return hit

    if plan is not None and plan.degraded:
        if not allow_degrade:
            raise DegradedRun(plan.describe(), plan)
        warnings.warn(
            DegradationWarning(plan.describe()), stacklevel=2
        )
        _obs.record_degrade(
            plan.requested, plan.method, plan.estimate, plan.budget
        )
        method = plan.method

    t0 = time.perf_counter()
    with _trace.span("align3", method=method):
        if chain_mode is not None:
            from repro.anchor.solve import align3_chain

            aln = align3_chain(
                sa, sb, sc, scheme,
                anchors=constraints if chain_mode == "constrained" else None,
                method="auto" if method in ("auto", "anchored") else method,
                auto_policy=auto_policy,
                cells_per_s_hint=cells_per_s_hint,
                workers=workers,
                allow_degrade=allow_degrade,
            )
        elif method == "dp3d":
            from repro.core.dp3d import align3_dp3d

            aln = align3_dp3d(sa, sb, sc, scheme)
        elif method == "wavefront":
            from repro.core.wavefront import align3_wavefront

            aln = align3_wavefront(sa, sb, sc, scheme)
        elif method == "hirschberg":
            from repro.core.hirschberg import align3_hirschberg

            aln = align3_hirschberg(sa, sb, sc, scheme)
        elif method == "pruned":
            from repro.core.bounds import carrillo_lipman_tube
            from repro.core.wavefront import align3_wavefront

            tube, stats = carrillo_lipman_tube(sa, sb, sc, scheme)
            aln = align3_wavefront(sa, sb, sc, scheme, tube=tube)
            aln.meta["engine"] = "pruned"
            aln.meta["pruning"] = {
                "kept_fraction": stats.kept_fraction,
                "pruned_fraction": stats.pruned_fraction,
                "lower_bound": stats.lower_bound,
                "upper_bound_at_origin": stats.upper_bound_at_origin,
                "tube_bytes": tube.nbytes,
            }
            _obs.record_pruning(
                "pruned",
                kept_fraction=stats.kept_fraction,
                lower_bound=stats.lower_bound,
                upper_bound=stats.upper_bound_at_origin,
            )
        elif method == "banded":
            from repro.core.band import align3_banded

            aln = align3_banded(sa, sb, sc, scheme)
        elif method == "affine":
            from repro.core.affine import align3_affine

            aln = align3_affine(sa, sb, sc, scheme)
        elif method == "shared":
            from repro.parallel.shared import align3_shared

            aln = align3_shared(sa, sb, sc, scheme, workers=workers)
        elif method == "blocks":
            from repro.parallel.blocks import align3_blocks

            aln = align3_blocks(sa, sb, sc, scheme, workers=workers)
        else:  # threads
            from repro.parallel.threads import align3_threads

            aln = align3_threads(sa, sb, sc, scheme, workers=workers)

    aln.meta.setdefault("engine", method)
    aln.meta["method"] = method
    aln.meta["wall_time_s"] = time.perf_counter() - t0
    aln.meta["scheme"] = scheme.name
    if selection is not None:
        aln.meta["auto"] = selection
    if plan is not None and plan.degraded:
        aln.meta["degraded_from"] = plan.requested
        aln.meta["degrade_steps"] = [
            {"method": m, "estimate_bytes": e} for m, e in plan.steps
        ]
        aln.meta["memory_budget_bytes"] = plan.budget
    if cache is not None and cache_key is not None:
        cache.put(cache_key, aln)
        aln.meta["cache"] = {"hit": False, "key": cache_key}
    return aln


def align3_score(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme | None = None,
) -> float:
    """Optimal SP score only, in O(n^2) memory.

    Dispatches to the score-only wavefront (linear model) or the score-only
    affine sweep.
    """
    check_sequences((sa, sb, sc), count=3)
    scheme = resolve_scheme((sa, sb, sc), scheme)
    if scheme.is_affine:
        from repro.core.affine import score3_affine

        return score3_affine(sa, sb, sc, scheme)
    from repro.core.wavefront import score3_wavefront

    return score3_wavefront(sa, sb, sc, scheme)
