"""High-level entry points for three-sequence alignment.

:func:`align3` dispatches to the engine that fits the request:

===============  =============================================================
method           engine
===============  =============================================================
``auto``         affine scheme -> ``affine``; small cube -> ``wavefront``;
                 large cube -> ``hirschberg``
``dp3d``         scalar reference full-matrix DP
``wavefront``    vectorised full-matrix plane sweep
``hirschberg``   linear-space divide and conquer
``pruned``       Carrillo–Lipman-pruned wavefront
``banded``       certified band doubling around the main diagonal
``affine``       7-state affine-gap DP (requires ``scheme.gap_open != 0``)
``shared``       multiprocess shared-memory wavefront
``threads``      thread-pool wavefront
===============  =============================================================

(``tests/test_api.py`` asserts every :data:`AVAILABLE_METHODS` entry
appears in this table, so it cannot drift from the dispatcher again.)
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Sequence

from repro.core.scoring import ScoringScheme, default_scheme_for
from repro.core.types import Alignment3
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.resilience import degrade as _degrade
from repro.resilience.errors import DegradationWarning, DegradedRun
from repro.seqio.alphabet import guess_common_alphabet
from repro.util.validation import check_sequences

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache uses core)
    from repro.cache import ResultCache

#: Cube size above which ``auto`` prefers the linear-space engine.
AUTO_HIRSCHBERG_CELLS = 8_000_000

AVAILABLE_METHODS = (
    "auto",
    "dp3d",
    "wavefront",
    "hirschberg",
    "pruned",
    "banded",
    "affine",
    "shared",
    "threads",
)


def resolve_scheme(
    seqs: Sequence[str], scheme: ScoringScheme | None = None
) -> ScoringScheme:
    """``scheme`` if given, else the default scheme for the guessed alphabet.

    The alphabet is guessed per sequence (empty sequences are skipped);
    mixing alphabets — a DNA read next to a protein chain — raises
    ``ValueError`` instead of silently scoring everything under whichever
    single alphabet happens to accept the concatenation.
    """
    if scheme is not None:
        return scheme
    return default_scheme_for(guess_common_alphabet(seqs))


#: Backwards-compatible private alias (pre-1.1 internal name).
_resolve_scheme = resolve_scheme


def align3(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme | None = None,
    method: str = "auto",
    workers: int = 2,
    allow_degrade: bool = True,
    cache: "ResultCache | None" = None,
) -> Alignment3:
    """Optimal three-sequence alignment.

    Parameters
    ----------
    sa, sb, sc:
        The three sequences.
    scheme:
        Scoring scheme; when omitted, a default is chosen from the guessed
        alphabet (BLOSUM62 for protein, 5/-4 for nucleotides).
    method:
        One of :data:`AVAILABLE_METHODS`.
    workers:
        Worker count for the ``shared``/``threads`` methods.
    allow_degrade:
        When the requested engine's estimated footprint exceeds the memory
        budget (see :mod:`repro.resilience.degrade`), True (default)
        transparently walks the degradation ladder down to an engine that
        fits — still exact, recorded in ``meta["degraded_from"]`` and a
        :class:`DegradationWarning`. False raises :class:`DegradedRun`
        instead of switching engines.
    cache:
        Optional :class:`repro.cache.ResultCache`. When given, the request
        is looked up by its content digest before any engine runs; a hit
        returns the stored alignment (bit-identical rows/score, meta
        modulo timing, ``meta["cache"]["hit"] = True``) and a miss stores
        the computed result. See ``docs/batching.md``.

    Returns
    -------
    Alignment3
        The optimal alignment; ``meta`` records the engine, cell counts and
        wall time.

    Examples
    --------
    >>> from repro import align3
    >>> aln = align3("GATTACA", "GATCA", "GATTA")
    >>> aln.sequences()
    ('GATTACA', 'GATCA', 'GATTA')
    """
    check_sequences((sa, sb, sc), count=3)
    if method not in AVAILABLE_METHODS:
        raise ValueError(
            f"unknown method {method!r}; available: {AVAILABLE_METHODS}"
        )
    scheme = resolve_scheme((sa, sb, sc), scheme)

    cache_key = None
    if cache is not None:
        from repro.cache import request_key

        cache_key = request_key((sa, sb, sc), scheme, "global", method)
        hit = cache.get(cache_key)
        if hit is not None:
            hit.meta["cache"] = {"hit": True, "key": cache_key}
            return hit

    if method == "auto":
        if scheme.is_affine:
            method = "affine"
        else:
            cells = (len(sa) + 1) * (len(sb) + 1) * (len(sc) + 1)
            method = "wavefront" if cells <= AUTO_HIRSCHBERG_CELLS else "hirschberg"
    if scheme.is_affine and method != "affine":
        raise ValueError(
            f"method {method!r} implements the linear gap model but the "
            "scheme has a nonzero gap_open; use method='affine'"
        )

    plan = None
    if method in _degrade.LADDER:
        plan = _degrade.plan_method(
            method, (len(sa), len(sb), len(sc))
        )
        if plan.degraded:
            if not allow_degrade:
                raise DegradedRun(plan.describe(), plan)
            warnings.warn(
                DegradationWarning(plan.describe()), stacklevel=2
            )
            _obs.record_degrade(
                plan.requested, plan.method, plan.estimate, plan.budget
            )
            method = plan.method

    t0 = time.perf_counter()
    with _trace.span("align3", method=method):
        if method == "dp3d":
            from repro.core.dp3d import align3_dp3d

            aln = align3_dp3d(sa, sb, sc, scheme)
        elif method == "wavefront":
            from repro.core.wavefront import align3_wavefront

            aln = align3_wavefront(sa, sb, sc, scheme)
        elif method == "hirschberg":
            from repro.core.hirschberg import align3_hirschberg

            aln = align3_hirschberg(sa, sb, sc, scheme)
        elif method == "pruned":
            from repro.core.bounds import carrillo_lipman_mask
            from repro.core.wavefront import align3_wavefront

            mask, stats = carrillo_lipman_mask(sa, sb, sc, scheme)
            aln = align3_wavefront(sa, sb, sc, scheme, mask=mask)
            aln.meta["pruning"] = {
                "kept_fraction": stats.kept_fraction,
                "lower_bound": stats.lower_bound,
            }
        elif method == "banded":
            from repro.core.band import align3_banded

            aln = align3_banded(sa, sb, sc, scheme)
        elif method == "affine":
            from repro.core.affine import align3_affine

            aln = align3_affine(sa, sb, sc, scheme)
        elif method == "shared":
            from repro.parallel.shared import align3_shared

            aln = align3_shared(sa, sb, sc, scheme, workers=workers)
        else:  # threads
            from repro.parallel.threads import align3_threads

            aln = align3_threads(sa, sb, sc, scheme, workers=workers)

    aln.meta.setdefault("engine", method)
    aln.meta["method"] = method
    aln.meta["wall_time_s"] = time.perf_counter() - t0
    aln.meta["scheme"] = scheme.name
    if plan is not None and plan.degraded:
        aln.meta["degraded_from"] = plan.requested
        aln.meta["degrade_steps"] = [
            {"method": m, "estimate_bytes": e} for m, e in plan.steps
        ]
        aln.meta["memory_budget_bytes"] = plan.budget
    if cache is not None and cache_key is not None:
        cache.put(cache_key, aln)
        aln.meta["cache"] = {"hit": False, "key": cache_key}
    return aln


def align3_score(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme | None = None,
) -> float:
    """Optimal SP score only, in O(n^2) memory.

    Dispatches to the score-only wavefront (linear model) or the score-only
    affine sweep.
    """
    check_sequences((sa, sb, sc), count=3)
    scheme = resolve_scheme((sa, sb, sc), scheme)
    if scheme.is_affine:
        from repro.core.affine import score3_affine

        return score3_affine(sa, sb, sc, scheme)
    from repro.core.wavefront import score3_wavefront

    return score3_wavefront(sa, sb, sc, scheme)
