"""Core three-sequence alignment algorithms (the paper's contribution).

Layout
------
``types``      result/alignment dataclasses and move encoding
``scoring``    sum-of-pairs scoring schemes (linear and affine gap models)
``matrices``   bundled substitution matrices (BLOSUM62, PAM250, DNA)
``dp3d``       reference scalar full-matrix 3-D DP with traceback
``wavefront``  vectorised anti-diagonal-plane engine (the fast path)
``rolling``    score-only O(n^2)-memory engines with slab capture
``hirschberg`` linear-space divide-and-conquer traceback
``affine``     7-state quasi-natural affine-gap 3-D DP
``bounds``     Carrillo–Lipman pruning masks
``api``        the ``align3`` front door
"""

from repro.core.types import (
    Alignment3,
    MOVE_ABC,
    MOVE_NAMES,
    move_delta,
    ALL_MOVES,
)
from repro.core.scoring import ScoringScheme
from repro.core.matrices import (
    blosum62,
    dna_tstv,
    pam250,
    dna_simple,
    unit_matrix,
    edit_distance_scheme,
)
from repro.core.api import align3, align3_score, AVAILABLE_METHODS
from repro.core.local import align3_local, score3_local
from repro.core.countopt import count_optimal, enumerate_optimal
from repro.core.band import align3_banded, score3_banded

__all__ = [
    "align3_local",
    "score3_local",
    "count_optimal",
    "enumerate_optimal",
    "align3_banded",
    "score3_banded",
    "Alignment3",
    "MOVE_ABC",
    "MOVE_NAMES",
    "ALL_MOVES",
    "move_delta",
    "ScoringScheme",
    "blosum62",
    "pam250",
    "dna_simple",
    "dna_tstv",
    "unit_matrix",
    "edit_distance_scheme",
    "align3",
    "align3_score",
    "AVAILABLE_METHODS",
]
