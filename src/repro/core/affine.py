"""Affine-gap three-sequence alignment (7-state quasi-natural model).

Model
-----
With affine gaps the per-column cost of a move depends on the *previous*
move: a pairwise gap run pays ``gap_open`` once when it starts and ``gap``
per column. Tracking, per cell, the move by which the path arrived (7
possibilities, plus a start state) yields Altschul's *quasi-natural* gap
costs: a pair's gap run is considered continued only when the immediately
preceding column of the three-way alignment had the same pair state. The
difference from the "natural" convention (where a both-gap column is
invisible to the pair) is that resumption after such a column is charged a
fresh opening; Altschul (1989) showed the discrepancy affects only
degenerate gap arrangements. :meth:`ScoringScheme.sp_score_affine_natural`
lets users quantify the gap between the two conventions on real outputs.

State space: ``V[m][i, j, k]`` = best score of an alignment of the prefixes
ending with move ``m``. Transition:

    V[m][cell] = subst(m, cell) + max_{m'} ( V[m'][cell - delta(m)]
                                             + T[m', m] )

where ``T`` is the static pair-gap table
(:meth:`ScoringScheme.affine_transition_table`) and ``subst`` gathers the
substitution scores of the pairs the move matches.

The engine sweeps anti-diagonal planes exactly like
:mod:`repro.core.wavefront`, with an extra leading state axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3, move_delta, moves_to_columns
from repro.core.wavefront import plane_bounds
from repro.util.validation import check_sequences

#: Number of DP states: index 0 is the pre-alignment start state, 1..7 the
#: arrival moves.
N_STATES = 8

#: Bit weights of each move (how many planes back its source lies).
_MOVE_WEIGHT = [0, 1, 1, 2, 1, 2, 2, 3]


@dataclass
class AffineResult:
    """Output of an affine sweep."""

    score: float
    prev_state: np.ndarray | None
    cells_computed: int
    final_states: np.ndarray | None = None


def affine_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    score_only: bool = False,
) -> AffineResult:
    """Run the 7-state affine wavefront sweep.

    ``score_only`` skips the per-(cell, state) predecessor table, dropping
    memory from O(7 n^3) to O(n^2).
    """
    check_sequences((sa, sb, sc), count=3)
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    trans = scheme.affine_transition_table()  # (8, 8)
    dims = (n1, n2, n3)

    # planes[r] has shape (N_STATES, n1+2, n2+2), padded like the linear
    # engine's buffers.
    planes = [
        np.full((N_STATES, n1 + 2, n2 + 2), NEG) for _ in range(4)
    ]
    prev_state = (
        None
        if score_only
        else np.zeros((N_STATES, n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )

    cells = 0
    dmax = n1 + n2 + n3
    for d in range(dmax + 1):
        out = planes[d % 4]
        ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
        if ilo > ihi or jlo > jhi:
            continue
        out[:, ilo + 1 : ihi + 2, :] = NEG
        if d == 0:
            out[0, 1, 1] = 0.0
            cells += 1
            continue

        I = np.arange(ilo, ihi + 1)[:, None]
        J = np.arange(jlo, jhi + 1)[None, :]
        K = d - I - J
        valid = (K >= 0) & (K <= n3)

        Ic = np.clip(I - 1, 0, max(n1 - 1, 0))
        Jc = np.clip(J - 1, 0, max(n2 - 1, 0))
        Kc = np.clip(K - 1, 0, max(n3 - 1, 0))
        shape = K.shape
        g_ab = sab[Ic, Jc] if (n1 and n2) else np.zeros(shape)
        g_ac = sac[Ic, Kc] if (n1 and n3) else np.zeros(shape)
        g_bc = sbc[Jc, Kc] if (n2 and n3) else np.zeros(shape)
        zero = np.zeros(shape)
        subst = {
            1: zero,
            2: zero,
            3: g_ab,
            4: zero,
            5: g_ac,
            6: g_bc,
            7: g_ab + g_ac + g_bc,
        }

        r0, r1 = ilo + 1, ihi + 2
        c0, c1 = jlo + 1, jhi + 2
        for m in range(1, 8):
            di, dj = m & 1, (m >> 1) & 1
            src = planes[(d - _MOVE_WEIGHT[m]) % 4]
            block = src[:, r0 - di : r1 - di, c0 - dj : c1 - dj]
            # (8, ri, rj) + per-state transition cost into move m.
            scored = block + trans[:, m][:, None, None]
            best_prev = scored.max(axis=0)
            vals = best_prev + subst[m]
            np.copyto(vals, NEG, where=~valid)
            out[m, r0:r1, c0:c1] = vals
            if prev_state is not None:
                arg = scored.argmax(axis=0).astype(np.int8)
                ii, jj = np.nonzero(valid)
                prev_state[m, ilo + ii, jlo + jj, K[ii, jj]] = arg[ii, jj]
        # State 0 (start) exists only at the origin.
        out[0, r0:r1, c0:c1] = NEG
        if ilo == 0 and jlo == 0 and d == 0:  # pragma: no cover
            out[0, 1, 1] = 0.0
        cells += int(valid.sum())

    final = planes[dmax % 4][:, n1 + 1, n2 + 1].copy()
    score = float(final.max())
    return AffineResult(
        score=score,
        prev_state=prev_state,
        cells_computed=cells,
        final_states=final,
    )


def score3_affine(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Optimal quasi-natural affine SP score (O(n^2) memory)."""
    return affine_sweep(sa, sb, sc, scheme, score_only=True).score


def align3_affine(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Alignment3:
    """Optimal affine-gap three-way alignment with traceback.

    Memory is O(7 n^3) bytes for the predecessor table; suitable for
    sequences up to a couple of hundred residues.
    """
    res = affine_sweep(sa, sb, sc, scheme, score_only=False)
    assert res.prev_state is not None and res.final_states is not None
    n1, n2, n3 = len(sa), len(sb), len(sc)

    state = int(np.argmax(res.final_states))
    score = float(res.final_states[state])

    moves: list[int] = []
    i, j, k = n1, n2, n3
    guard = 3 * (n1 + n2 + n3) + 3
    while (i, j, k) != (0, 0, 0):
        if state == 0:
            raise RuntimeError("affine traceback reached start state early")
        moves.append(state)
        prev = int(res.prev_state[state, i, j, k])
        di, dj, dk = move_delta(state)
        i, j, k = i - di, j - dj, k - dk
        state = prev
        guard -= 1
        if guard < 0:
            raise RuntimeError("affine traceback did not terminate")
    if state != 0:
        raise RuntimeError("affine traceback did not end in the start state")
    moves.reverse()
    cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "affine",
        "cells": res.cells_computed,
        "states": N_STATES,
    }
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]


def affine_reference(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Scalar reference for the quasi-natural affine optimum.

    Plain dict-based DP over (i, j, k, state); exponential in nothing but
    patience — use for sequences up to ~10 residues in tests.
    """
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    trans = scheme.affine_transition_table()

    def subst(m: int, i: int, j: int, k: int) -> float:
        total = 0.0
        if m & 1 and m & 2:
            total += sab[i - 1, j - 1]
        if m & 1 and m & 4:
            total += sac[i - 1, k - 1]
        if m & 2 and m & 4:
            total += sbc[j - 1, k - 1]
        return total

    V: dict[tuple[int, int, int, int], float] = {(0, 0, 0, 0): 0.0}
    for d in range(1, n1 + n2 + n3 + 1):
        for i in range(max(0, d - n2 - n3), min(n1, d) + 1):
            for j in range(max(0, d - i - n3), min(n2, d - i) + 1):
                k = d - i - j
                for m in range(1, 8):
                    di, dj, dk = move_delta(m)
                    pi, pj, pk = i - di, j - dj, k - dk
                    if pi < 0 or pj < 0 or pk < 0:
                        continue
                    best = NEG
                    for mp in range(8):
                        prev = V.get((pi, pj, pk, mp))
                        if prev is None:
                            continue
                        v = prev + trans[mp, m]
                        if v > best:
                            best = v
                    if best > NEG / 2:
                        V[(i, j, k, m)] = best + subst(m, i, j, k)
    finals = [
        V.get((n1, n2, n3, m), NEG) for m in range(8)
    ]
    if n1 == n2 == n3 == 0:
        return 0.0
    return float(max(finals))
