"""Local (Smith–Waterman-style) three-sequence alignment.

The local variant of the 3-D DP: every cell may additionally restart at 0
(begin a fresh alignment), and the answer is the maximum over *all* cells
rather than the terminal corner. The traceback runs from the argmax cell
back to the nearest restart. This finds the highest-scoring triple of
substrings — the natural tool when only a conserved core is shared (the
"motif finding" use case the paper family's introductions cite).

Engines: a scalar reference (:func:`local_dp3d_matrix`) and a vectorised
anti-diagonal sweep (:func:`align3_local` / :func:`score3_local`) mirroring
:mod:`repro.core.wavefront`; both validated against each other and against
the invariant ``local >= max(0, global)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3, move_delta, moves_to_columns
from repro.core.wavefront import plane_bounds
from repro.util.validation import check_sequences


def local_dp3d_matrix(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray]:
    """Scalar reference fill of the local score/move cubes.

    ``M[i, j, k] == 0`` marks a restart cell (the local alignment through
    it begins there).
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("local_dp3d_matrix implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    D = np.zeros((n1 + 1, n2 + 1, n3 + 1))
    M = np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    for i in range(n1 + 1):
        for j in range(n2 + 1):
            for k in range(n3 + 1):
                if i == j == k == 0:
                    continue
                best, move = 0.0, 0  # restart
                if i >= 1:
                    v = D[i - 1, j, k] + g2
                    if v > best:
                        best, move = v, 1
                if j >= 1:
                    v = D[i, j - 1, k] + g2
                    if v > best:
                        best, move = v, 2
                if k >= 1:
                    v = D[i, j, k - 1] + g2
                    if v > best:
                        best, move = v, 4
                if i >= 1 and j >= 1:
                    v = D[i - 1, j - 1, k] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best, move = v, 3
                if i >= 1 and k >= 1:
                    v = D[i - 1, j, k - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best, move = v, 5
                if j >= 1 and k >= 1:
                    v = D[i, j - 1, k - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best, move = v, 6
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        D[i - 1, j - 1, k - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best, move = v, 7
                D[i, j, k] = best
                M[i, j, k] = move
    return D, M


@dataclass
class LocalResult:
    """Output of a local sweep."""

    score: float
    end_cell: tuple[int, int, int]
    move_cube: np.ndarray | None
    cells_computed: int


def local_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    score_only: bool = False,
) -> LocalResult:
    """Vectorised local sweep (anti-diagonal planes, restart at 0)."""
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("local_sweep implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    best_score = 0.0
    best_cell = (0, 0, 0)
    cells = 0

    for d in range(n1 + n2 + n3 + 1):
        out = planes[d % 4]
        ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
        if ilo > ihi or jlo > jhi:
            continue
        out[ilo + 1 : ihi + 2, :] = NEG
        if d == 0:
            out[1, 1] = 0.0
            cells += 1
            continue

        I = np.arange(ilo, ihi + 1)[:, None]
        J = np.arange(jlo, jhi + 1)[None, :]
        K = d - I - J
        valid = (K >= 0) & (K <= n3)
        Ic = np.clip(I - 1, 0, max(n1 - 1, 0))
        Jc = np.clip(J - 1, 0, max(n2 - 1, 0))
        Kc = np.clip(K - 1, 0, max(n3 - 1, 0))
        shape = K.shape
        g_ab = sab[Ic, Jc] if (n1 and n2) else np.zeros(shape)
        g_ac = sac[Ic, Kc] if (n1 and n3) else np.zeros(shape)
        g_bc = sbc[Jc, Kc] if (n2 and n3) else np.zeros(shape)

        r0, r1 = ilo + 1, ihi + 2
        c0, c1 = jlo + 1, jhi + 2
        P1 = planes[(d - 1) % 4]
        P2 = planes[(d - 2) % 4]
        P3 = planes[(d - 3) % 4]
        cand = np.empty((8,) + shape)
        cand[0] = 0.0  # restart
        cand[1] = P1[r0 - 1 : r1 - 1, c0:c1] + g2  # A
        cand[2] = P1[r0:r1, c0 - 1 : c1 - 1] + g2  # B
        cand[3] = P2[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1] + g_ab + g2  # AB
        cand[4] = P1[r0:r1, c0:c1] + g2  # C
        cand[5] = P2[r0 - 1 : r1 - 1, c0:c1] + g_ac + g2  # AC
        cand[6] = P2[r0:r1, c0 - 1 : c1 - 1] + g_bc + g2  # BC
        cand[7] = P3[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1] + g_ab + g_ac + g_bc

        best = cand.max(axis=0)
        np.copyto(best, NEG, where=~valid)
        out[r0:r1, c0:c1] = best
        cells += int(valid.sum())

        if move_cube is not None:
            # Prefer the restart (move 0) only when nothing beats 0, which
            # argmax already encodes because cand[0] == 0 everywhere.
            moves = cand.argmax(axis=0).astype(np.int8)
            ii, jj = np.nonzero(valid)
            move_cube[ilo + ii, jlo + jj, K[ii, jj]] = moves[ii, jj]

        masked = np.where(valid, best, NEG)
        flat = int(masked.argmax())
        val = float(masked.flat[flat])
        if val > best_score:
            ri, rj = np.unravel_index(flat, masked.shape)
            best_score = val
            best_cell = (ilo + int(ri), jlo + int(rj), int(K[ri, rj]))

    return LocalResult(
        score=best_score,
        end_cell=best_cell,
        move_cube=move_cube,
        cells_computed=cells,
    )


def score3_local(sa: str, sb: str, sc: str, scheme: ScoringScheme) -> float:
    """Best local SP score (O(n^2) memory)."""
    return local_sweep(sa, sb, sc, scheme, score_only=True).score


def align3_local(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Alignment3:
    """Best local three-way alignment (of substrings of the inputs).

    The returned :class:`Alignment3` aligns the three *substrings*;
    ``meta["spans"]`` records each substring's half-open interval in its
    source sequence.
    """
    res = local_sweep(sa, sb, sc, scheme, score_only=False)
    assert res.move_cube is not None
    i, j, k = res.end_cell
    end = res.end_cell
    moves: list[int] = []
    while True:
        m = int(res.move_cube[i, j, k])
        if m == 0:
            break
        moves.append(m)
        di, dj, dk = move_delta(m)
        i, j, k = i - di, j - dj, k - dk
    moves.reverse()
    start = (i, j, k)
    sub_a = sa[start[0] : end[0]]
    sub_b = sb[start[1] : end[1]]
    sub_c = sc[start[2] : end[2]]
    cols = moves_to_columns(moves, sub_a, sub_b, sub_c)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "local",
        "spans": (
            (start[0], end[0]),
            (start[1], end[1]),
            (start[2], end[2]),
        ),
        "cells": res.cells_computed,
    }
    if not moves:
        # Empty local alignment (all-negative scores everywhere).
        return Alignment3(rows=("", "", ""), score=0.0, meta=meta)
    return Alignment3(rows=rows, score=res.score, meta=meta)  # type: ignore[arg-type]
