"""Sum-of-pairs (SP) scoring for three-sequence alignments.

Objective
---------
Given a three-way alignment, project it onto each of the three sequence
pairs. The SP score is the sum of the three projected pairwise scores,
where a pairwise column scores:

* ``matrix[x, y]``       when both residues are present,
* ``gap``                when exactly one is present (a residue/gap pair),
* ``0``                  when both are gaps (the column vanishes under
  projection — the conventional treatment).

With a linear gap model the per-column contribution of a 3-D DP *move*
``m`` therefore depends only on which sequences ``m`` advances, which is
what makes the 7-predecessor recurrence correct.

Affine gaps
-----------
With ``gap_open != 0`` a pairwise gap run additionally pays ``gap_open``
once when it starts. The exact ("natural") SP-affine objective needs gap
run bookkeeping across columns the pair does not appear in; the bundled
3-D DP (:mod:`repro.core.affine`) implements Altschul's *quasi-natural*
gap costs, which charge re-opening after an intervening both-gaps column.
Both conventions are implemented here as alignment scorers so the DP can
be verified against the convention it optimises
(:func:`ScoringScheme.sp_score_affine_quasinatural`), and the difference
can be measured (:func:`ScoringScheme.sp_score_affine_natural`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.seqio.alphabet import GAP_CHAR, Alphabet
from repro.util.validation import check_sequences

#: Pair-state codes for a pair of rows inside one alignment column.
PAIR_NEITHER = 0
PAIR_ONLY_FIRST = 1  # first row has a residue, second is a gap
PAIR_ONLY_SECOND = 2
PAIR_BOTH = 3

#: The three sequence pairs, as index pairs into (A, B, C).
PAIRS: tuple[tuple[int, int], ...] = ((0, 1), (0, 2), (1, 2))


def pair_state(move: int, first: int, second: int) -> int:
    """Pair-state of rows ``first``/``second`` under DP move ``move``."""
    a = (move >> first) & 1
    b = (move >> second) & 1
    if a and b:
        return PAIR_BOTH
    if a:
        return PAIR_ONLY_FIRST
    if b:
        return PAIR_ONLY_SECOND
    return PAIR_NEITHER


@dataclass(frozen=True)
class ScoringScheme:
    """Sum-of-pairs scoring parameters for three-sequence alignment.

    Parameters
    ----------
    alphabet:
        Residue alphabet; sequences are encoded through it.
    matrix:
        ``(alphabet.size, alphabet.size)`` symmetric similarity matrix.
    gap:
        Score of a residue-against-gap pairwise column (normally negative);
        with an affine model this is the *extension* cost per column.
    gap_open:
        Extra score charged when a pairwise gap run opens (0 = linear model).
    name:
        Identifier used in reports.
    """

    alphabet: Alphabet
    matrix: np.ndarray
    gap: float
    gap_open: float = 0.0
    name: str = "custom"
    _matrix: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=np.float64)
        k = self.alphabet.size
        if mat.shape != (k, k):
            raise ValueError(
                f"matrix shape {mat.shape} does not match alphabet "
                f"{self.alphabet.name!r} size {k}"
            )
        if not np.allclose(mat, mat.T):
            raise ValueError("substitution matrix must be symmetric")
        if self.gap_open > 0:
            raise ValueError(
                f"gap_open is a penalty and must be <= 0, got {self.gap_open}"
            )
        mat = np.ascontiguousarray(mat)
        mat.setflags(write=False)
        object.__setattr__(self, "matrix", mat)
        object.__setattr__(self, "_matrix", mat)

    # ------------------------------------------------------------------
    # Basic lookups
    # ------------------------------------------------------------------

    @property
    def is_affine(self) -> bool:
        """True when a nonzero gap-open penalty is configured."""
        return self.gap_open != 0.0

    def encode(self, seq: str) -> np.ndarray:
        """Encode a sequence through the scheme's alphabet."""
        return self.alphabet.encode(seq)

    def pair_score(self, x: str, y: str) -> float:
        """Pairwise column score of two characters (``-`` allowed)."""
        xg, yg = x == GAP_CHAR, y == GAP_CHAR
        if xg and yg:
            return 0.0
        if xg or yg:
            return self.gap
        cx = int(self.alphabet.encode(x)[0])
        cy = int(self.alphabet.encode(y)[0])
        return float(self._matrix[cx, cy])

    def column_score(self, ca: str, cb: str, cc: str) -> float:
        """Linear-model SP score of one three-way column."""
        return (
            self.pair_score(ca, cb)
            + self.pair_score(ca, cc)
            + self.pair_score(cb, cc)
        )

    # ------------------------------------------------------------------
    # Precomputed profile matrices for the vectorised kernels
    # ------------------------------------------------------------------

    def profile_matrices(
        self, sa: str, sb: str, sc: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pairwise residue-score lookup tables.

        Returns ``(SAB, SAC, SBC)`` where ``SAB[i, j] ==
        matrix[code(sa[i]), code(sb[j])]`` and likewise for the other pairs.
        These are gathered (not recomputed) inside the plane kernels, which
        is the main vectorisation enabler.
        """
        ea, eb, ec = self.encode(sa), self.encode(sb), self.encode(sc)
        sab = self._matrix[ea[:, None], eb[None, :]] if len(ea) and len(eb) else np.zeros((len(ea), len(eb)))
        sac = self._matrix[ea[:, None], ec[None, :]] if len(ea) and len(ec) else np.zeros((len(ea), len(ec)))
        sbc = self._matrix[eb[:, None], ec[None, :]] if len(eb) and len(ec) else np.zeros((len(eb), len(ec)))
        return (
            np.ascontiguousarray(sab),
            np.ascontiguousarray(sac),
            np.ascontiguousarray(sbc),
        )

    def pairwise_profile(self, sx: str, sy: str) -> np.ndarray:
        """Residue-score lookup table for one sequence pair."""
        ex, ey = self.encode(sx), self.encode(sy)
        if len(ex) == 0 or len(ey) == 0:
            return np.zeros((len(ex), len(ey)))
        return np.ascontiguousarray(self._matrix[ex[:, None], ey[None, :]])

    # ------------------------------------------------------------------
    # Move deltas (scalar reference path)
    # ------------------------------------------------------------------

    def move_delta_score(
        self,
        move: int,
        sa: str,
        sb: str,
        sc: str,
        i: int,
        j: int,
        k: int,
    ) -> float:
        """Linear-model score of arriving at cell ``(i, j, k)`` via ``move``.

        Cell indices are 1-based prefix lengths; the residues consumed by the
        move are ``sa[i-1]``, ``sb[j-1]``, ``sc[k-1]`` for the advanced
        sequences.
        """
        di, dj, dk = move & 1, (move >> 1) & 1, (move >> 2) & 1
        ca = sa[i - 1] if di else GAP_CHAR
        cb = sb[j - 1] if dj else GAP_CHAR
        cc = sc[k - 1] if dk else GAP_CHAR
        return self.column_score(ca, cb, cc)

    # ------------------------------------------------------------------
    # Full-alignment scorers (ground truth used by tests and reports)
    # ------------------------------------------------------------------

    def sp_score(self, rows: Sequence[str]) -> float:
        """Linear-model SP score of a complete three-way alignment."""
        check_sequences(rows, count=3)
        self._check_rows(rows)
        total = 0.0
        for ca, cb, cc in zip(*rows):
            total += self.column_score(ca, cb, cc)
        return total

    def sp_score_affine_quasinatural(self, rows: Sequence[str]) -> float:
        """Affine SP score under Altschul's quasi-natural convention.

        Per pair, a gap run is "continued" only when the immediately
        preceding column of the *three-way* alignment had the same pair
        state; an intervening both-gaps column breaks the run (and a fresh
        ``gap_open`` is charged on resumption). This is exactly the
        objective optimised by :mod:`repro.core.affine`.
        """
        return self._sp_affine(rows, skip_neither=False)

    def sp_score_affine_natural(self, rows: Sequence[str]) -> float:
        """Affine SP score under the natural convention (both-gap columns
        are invisible to a pair's gap-run bookkeeping)."""
        return self._sp_affine(rows, skip_neither=True)

    def _sp_affine(self, rows: Sequence[str], skip_neither: bool) -> float:
        check_sequences(rows, count=3)
        self._check_rows(rows)
        total = 0.0
        prev = [PAIR_NEITHER - 1] * 3  # sentinel: nothing matches it
        for col in zip(*rows):
            present = [c != GAP_CHAR for c in col]
            for p, (x, y) in enumerate(PAIRS):
                if present[x] and present[y]:
                    state = PAIR_BOTH
                    total += self.pair_score(col[x], col[y])
                elif present[x]:
                    state = PAIR_ONLY_FIRST
                    total += self.gap
                    if prev[p] != state:
                        total += self.gap_open
                elif present[y]:
                    state = PAIR_ONLY_SECOND
                    total += self.gap
                    if prev[p] != state:
                        total += self.gap_open
                else:
                    state = PAIR_NEITHER
                    if skip_neither:
                        continue  # leave prev[p] unchanged
                prev[p] = state
        return total

    @staticmethod
    def _check_rows(rows: Sequence[str]) -> None:
        lengths = {len(r) for r in rows}
        if len(lengths) != 1:
            raise ValueError(f"alignment rows have unequal lengths: {lengths}")

    # ------------------------------------------------------------------
    # Affine transition table (used by repro.core.affine)
    # ------------------------------------------------------------------

    def affine_transition_table(self) -> np.ndarray:
        """Static gap-cost table ``T[prev_move, move]``.

        ``prev_move`` ranges over 0..7 where 0 is the pre-alignment start
        state; ``move`` over 1..7 (stored at indices 1..7; column 0 is
        ``-inf``-like unused). Entry value: the sum over the three pairs of
        the gap contribution of taking ``move`` after ``prev_move``
        (extension ``gap`` plus ``gap_open`` when the pair state changes into
        a gap). Substitution contributions are position-dependent and added
        separately by the kernel.
        """
        table = np.zeros((8, 8), dtype=np.float64)
        for prev in range(8):
            for move in range(1, 8):
                cost = 0.0
                for x, y in PAIRS:
                    state = pair_state(move, x, y)
                    if state in (PAIR_ONLY_FIRST, PAIR_ONLY_SECOND):
                        cost += self.gap
                        prev_state = (
                            pair_state(prev, x, y) if prev else -1
                        )
                        if prev_state != state:
                            cost += self.gap_open
                table[prev, move] = cost
        return table

    def with_gaps(self, gap: float, gap_open: float = 0.0) -> "ScoringScheme":
        """A copy of this scheme with different gap parameters."""
        return ScoringScheme(
            alphabet=self.alphabet,
            matrix=np.array(self._matrix),
            gap=gap,
            gap_open=gap_open,
            name=self.name,
        )


def default_scheme_for(alphabet: Alphabet) -> ScoringScheme:
    """A sensible default scheme: BLOSUM62/gap -8 for protein, 5/-4/gap -6
    for nucleotides, unit scores otherwise."""
    from repro.core import matrices as m

    if alphabet.name == "protein":
        return ScoringScheme(alphabet, m.blosum62(), gap=-8.0, name="blosum62")
    if alphabet.name == "dna":
        return ScoringScheme(alphabet, m.dna_simple(), gap=-6.0, name="dna5-4")
    if alphabet.name == "rna":
        return ScoringScheme(alphabet, m.rna_simple(), gap=-6.0, name="rna5-4")
    return ScoringScheme(
        alphabet, m.unit_matrix(alphabet), gap=-1.0, name="unit"
    )


def scheme_from_records(records: Iterable[tuple[str, str]]) -> ScoringScheme:
    """Guess an alphabet from FASTA records and build the default scheme."""
    from repro.seqio.alphabet import guess_alphabet

    seqs = [seq for _h, seq in records]
    if not seqs:
        raise ValueError("no records given")
    alpha = guess_alphabet(seqs[0])
    for s in seqs[1:]:
        if not alpha.is_valid(s):
            alpha = guess_alphabet("".join(seqs))
            break
    return default_scheme_for(alpha)
