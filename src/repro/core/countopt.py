"""Counting and enumerating co-optimal three-way alignments.

The SP optimum is usually not unique — gap placements shuffle freely in
low-information regions. This module quantifies that degeneracy:

* :func:`count_optimal` — the exact number of distinct optimal alignments
  (a counting DP over the score cube, Python integers so it never
  overflows; the count grows exponentially in the sequence lengths);
* :func:`enumerate_optimal` — materialise up to ``limit`` of them by
  depth-first traceback over all tight predecessors.

Both need the full score cube, obtained here by stacking the slab
engine's captured levels, so memory is O(n^3) floats — use for moderate
lengths (the counting is a diagnostic, not a production path).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.dp3d import NEG
from repro.core.rolling import slab_sweep
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3, move_delta, moves_to_columns
from repro.util.validation import check_positive, check_sequences

#: Score-tie tolerance when matching predecessors.
EPS = 1e-6


def score_cube(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> np.ndarray:
    """The full DP value cube ``D[i, j, k]`` (vectorised fill)."""
    check_sequences((sa, sb, sc), count=3)
    res = slab_sweep(sa, sb, sc, scheme, want_levels=range(len(sa) + 1))
    return np.stack([res.slabs[i] for i in range(len(sa) + 1)])


def _tight_moves(
    D: np.ndarray,
    deltas: tuple[np.ndarray, np.ndarray, np.ndarray],
    g2: float,
    cell: tuple[int, int, int],
) -> list[int]:
    """Moves whose predecessor exactly accounts for ``D[cell]``."""
    sab, sac, sbc = deltas
    i, j, k = cell
    here = D[i, j, k]
    out = []
    for m in range(1, 8):
        di, dj, dk = move_delta(m)
        pi, pj, pk = i - di, j - dj, k - dk
        if pi < 0 or pj < 0 or pk < 0:
            continue
        delta = 0.0
        pairs = 0
        if di and dj:
            delta += sab[i - 1, j - 1]
            pairs += 1
        if di and dk:
            delta += sac[i - 1, k - 1]
            pairs += 1
        if dj and dk:
            delta += sbc[j - 1, k - 1]
            pairs += 1
        # Residue/gap pairs: each advanced sequence pairs with each gapped
        # one; with w sequences advanced there are w*(3-w) such pairs, each
        # costing scheme.gap — equivalently g2 for w=1,2 and 0 for w=3.
        w = di + dj + dk
        if w < 3:
            delta += g2
        prev = D[pi, pj, pk]
        if prev > NEG / 2 and abs(prev + delta - here) <= EPS:
            out.append(m)
    return out


def count_optimal(sa: str, sb: str, sc: str, scheme: ScoringScheme) -> int:
    """The exact number of distinct optimal alignments.

    Counting DP: ``C[origin] = 1``; each cell sums the counts of the
    predecessors that achieve its DP value. Python integers throughout —
    counts routinely exceed 2^64 for a few dozen residues.
    """
    if scheme.is_affine:
        raise ValueError("count_optimal implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    D = score_cube(sa, sb, sc, scheme)
    deltas = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    counts: dict[tuple[int, int, int], int] = {(0, 0, 0): 1}
    for d in range(1, n1 + n2 + n3 + 1):
        for i in range(max(0, d - n2 - n3), min(n1, d) + 1):
            for j in range(max(0, d - i - n3), min(n2, d - i) + 1):
                k = d - i - j
                total = 0
                for m in _tight_moves(D, deltas, g2, (i, j, k)):
                    di, dj, dk = move_delta(m)
                    total += counts.get((i - di, j - dj, k - dk), 0)
                counts[(i, j, k)] = total
    return counts[(n1, n2, n3)]


def iter_optimal_moves(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Iterator[list[int]]:
    """Yield every optimal move sequence (lexicographic by move code)."""
    if scheme.is_affine:
        raise ValueError("iter_optimal_moves implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    D = score_cube(sa, sb, sc, scheme)
    deltas = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    stack: list[int] = []

    def walk(cell: tuple[int, int, int]) -> Iterator[list[int]]:
        if cell == (0, 0, 0):
            yield list(reversed(stack))
            return
        for m in _tight_moves(D, deltas, g2, cell):
            di, dj, dk = move_delta(m)
            stack.append(m)
            yield from walk((cell[0] - di, cell[1] - dj, cell[2] - dk))
            stack.pop()

    yield from walk((n1, n2, n3))


def enumerate_optimal(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    limit: int = 100,
) -> list[Alignment3]:
    """Up to ``limit`` distinct optimal alignments.

    The returned list is deterministic (lexicographic in move codes along
    the backward walk) and every element scores exactly the optimum.
    """
    check_positive("limit", limit)
    n1, n2, n3 = len(sa), len(sb), len(sc)
    out: list[Alignment3] = []
    opt = None
    for moves in iter_optimal_moves(sa, sb, sc, scheme):
        cols = moves_to_columns(moves, sa, sb, sc)
        rows = tuple("".join(col[r] for col in cols) for r in range(3))
        score = scheme.sp_score(rows)
        if opt is None:
            opt = score
        out.append(
            Alignment3(
                rows=rows,  # type: ignore[arg-type]
                score=score,
                meta={"engine": "enumerate", "rank": len(out)},
            )
        )
        if len(out) >= limit:
            break
    if not out:
        # Degenerate all-empty input: one empty alignment.
        if (n1, n2, n3) == (0, 0, 0):
            return [
                Alignment3(rows=("", "", ""), score=0.0, meta={"engine": "enumerate"})
            ]
        raise RuntimeError("no optimal path found (engine bug)")
    return out
