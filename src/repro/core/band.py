"""Banded three-sequence alignment with an optimality certificate.

For similar sequences the optimal path hugs the (scaled) main diagonal of
the cube, so restricting the DP to a band around it cuts the O(n^3) work
to O(b^2 n). Unlike heuristics, this implementation *certifies* its
result: after the banded sweep it computes the Carrillo–Lipman upper bound
``U(i, j, k)`` (sum of pairwise through-cell optima, see
:mod:`repro.core.bounds`) over the cells **outside** the band; if the
banded score is at least that maximum, no path leaving the band can beat
it and the banded optimum is the global optimum. Otherwise the band is
doubled and the sweep repeated — in the worst case the band grows to the
whole cube and the result is trivially exact.

The certificate costs O(n^3) cheap additions (three broadcast adds per
slab) but O(n^2) memory, and is far cheaper than the 7-candidate DP it
avoids.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.core.tube import PruningTube
from repro.core.types import Alignment3
from repro.core.wavefront import align3_wavefront
from repro.pairwise.matrices2d import through_matrix
from repro.util.validation import check_positive, check_sequences


def band_tube(n1: int, n2: int, n3: int, band: int) -> PruningTube:
    """The scaled-diagonal band as an O(n^2) :class:`PruningTube`.

    A cell ``(i, j, k)`` is kept when ``|j - i*n2/n1| <= band`` and
    ``|k - i*n3/n1| <= band`` (with degenerate axes always kept). Both
    conditions are interval-shaped — the ``j`` test is ``k``-independent
    (it empties whole rows) and the ``k`` test is one interval per
    ``i`` — so the tube represents the band *exactly*, cell for cell,
    in two ``(n1+1, n2+1)`` integer planes instead of a boolean cube.
    The origin and terminal corners lie exactly on the scaled diagonal,
    so they are always inside.
    """
    check_positive("band", band)
    I = np.arange(n1 + 1)[:, None]
    J = np.arange(n2 + 1)[None, :]
    shape = (n1 + 1, n2 + 1)
    if n1:
        ok_j = np.abs(J - I * (n2 / n1)) <= band  # (n1+1, n2+1)
        centre = I * (n3 / n1)
        klo_row = np.ceil(centre - band).astype(np.intp)  # (n1+1, 1)
        khi_row = np.floor(centre + band).astype(np.intp)
        klo = np.where(ok_j, np.broadcast_to(klo_row, shape), 0)
        khi = np.where(ok_j, np.broadcast_to(khi_row, shape), -1)
    elif n2:
        # Degenerate first axis: band the (j, k) diagonal instead.
        centre = J * (n3 / n2)
        klo = np.broadcast_to(np.ceil(centre - band).astype(np.intp), shape)
        khi = np.broadcast_to(np.floor(centre + band).astype(np.intp), shape)
    else:
        klo = np.zeros(shape, dtype=np.intp)
        khi = np.full(shape, n3, dtype=np.intp)
    tube = PruningTube(klo=np.array(klo), khi=np.array(khi), n3=n3)
    tube.keep_cell(0, 0, 0)
    tube.keep_cell(n1, n2, n3)
    return tube


def band_mask(
    n1: int, n2: int, n3: int, band: int
) -> np.ndarray:
    """Dense boolean keep-mask of the scaled-diagonal band.

    Kept for tests and diagnostics; the engine itself runs on the
    memory-light :func:`band_tube` (cell-for-cell identical region).
    """
    return band_tube(n1, n2, n3, band).dense_mask()


def _max_outside_upper_bound(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    tube: PruningTube,
    t_ab: np.ndarray,
    t_ac: np.ndarray,
    t_bc: np.ndarray,
) -> float:
    """Max of the Carrillo–Lipman bound over cells outside ``tube``.

    Works slab-by-slab along ``i`` with an O(n) boolean row rebuilt from
    the interval ends, so the certificate stays O(n^2) memory like the
    tube itself.
    """
    n1, n3 = len(sa), len(sc)
    ks = np.arange(n3 + 1)[None, :]
    worst = -np.inf
    for i in range(n1 + 1):
        outside = (ks < tube.klo[i][:, None]) | (ks > tube.khi[i][:, None])
        if not outside.any():
            continue
        u = t_ab[i][:, None] + t_ac[i][None, :] + t_bc
        val = u[outside].max()
        if val > worst:
            worst = val
    return float(worst)


def align3_banded(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    band: int | None = None,
    certify: bool = True,
) -> Alignment3:
    """Optimal alignment by iterative band doubling.

    Parameters
    ----------
    band:
        Initial band half-width; defaults to a width that covers the
        length differences plus a margin.
    certify:
        Verify global optimality via the Carrillo–Lipman outside bound and
        double the band until certified (or the band covers the cube).
        With ``certify=False`` the first banded result is returned as-is —
        then it is only optimal *within* the band.

    Returns
    -------
    Alignment3 with ``meta["band"]`` (final half-width),
    ``meta["band_certified"]`` and ``meta["band_iterations"]``.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("align3_banded implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    if band is None:
        spread = abs(n1 - n2) + abs(n1 - n3) + abs(n2 - n3)
        band = max(4, spread // 2 + 2)
    check_positive("band", band)

    max_dim = max(n1, n2, n3, 1)
    t_ab = t_ac = t_bc = None
    if certify:
        t_ab = through_matrix(sa, sb, scheme)
        t_ac = through_matrix(sa, sc, scheme)
        t_bc = through_matrix(sb, sc, scheme)

    iterations = 0
    certified = False
    while True:
        iterations += 1
        tube = band_tube(n1, n2, n3, band)
        try:
            aln = align3_wavefront(sa, sb, sc, scheme, tube=tube)
        except RuntimeError:
            # A too-thin band can disconnect origin from terminal when the
            # lengths are very uneven; widen and retry.
            band *= 2
            continue
        if tube.covers_cube:
            certified = True
            break
        if not certify:
            break
        assert t_ab is not None and t_ac is not None and t_bc is not None
        outside_max = _max_outside_upper_bound(
            sa, sb, sc, scheme, tube, t_ab, t_ac, t_bc
        )
        if aln.score >= outside_max - 1e-9:
            certified = True
            break
        band *= 2
        if band > 2 * max_dim:
            band = 2 * max_dim  # guarantees full coverage next round

    meta: dict[str, Any] = dict(aln.meta)
    meta.update(
        {
            "engine": "banded",
            "band": band,
            "band_certified": certified,
            "band_iterations": iterations,
        }
    )
    return Alignment3(rows=aln.rows, score=aln.score, meta=meta)


def score3_banded(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    band: int | None = None,
) -> float:
    """Certified-optimal SP score by iterative band doubling."""
    return align3_banded(sa, sb, sc, scheme, band=band, certify=True).score
