"""Banded three-sequence alignment with an optimality certificate.

For similar sequences the optimal path hugs the (scaled) main diagonal of
the cube, so restricting the DP to a band around it cuts the O(n^3) work
to O(b^2 n). Unlike heuristics, this implementation *certifies* its
result: after the banded sweep it computes the Carrillo–Lipman upper bound
``U(i, j, k)`` (sum of pairwise through-cell optima, see
:mod:`repro.core.bounds`) over the cells **outside** the band; if the
banded score is at least that maximum, no path leaving the band can beat
it and the banded optimum is the global optimum. Otherwise the band is
doubled and the sweep repeated — in the worst case the band grows to the
whole cube and the result is trivially exact.

The certificate costs O(n^3) cheap additions (three broadcast adds per
slab) but O(n^2) memory, and is far cheaper than the 7-candidate DP it
avoids.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3
from repro.core.wavefront import align3_wavefront
from repro.pairwise.matrices2d import through_matrix
from repro.util.validation import check_positive, check_sequences


def band_mask(
    n1: int, n2: int, n3: int, band: int
) -> np.ndarray:
    """Boolean keep-mask of the scaled-diagonal band.

    A cell ``(i, j, k)`` is kept when ``|j - i*n2/n1| <= band`` and
    ``|k - i*n3/n1| <= band`` (with degenerate axes always kept). The
    origin and terminal corners lie exactly on the scaled diagonal, so
    they are always inside.
    """
    check_positive("band", band)
    I = np.arange(n1 + 1)[:, None, None]
    J = np.arange(n2 + 1)[None, :, None]
    K = np.arange(n3 + 1)[None, None, :]
    if n1:
        ok_j = np.abs(J - I * (n2 / n1)) <= band
        ok_k = np.abs(K - I * (n3 / n1)) <= band
        mask = np.broadcast_to(ok_j & ok_k, (n1 + 1, n2 + 1, n3 + 1)).copy()
    elif n2:
        # Degenerate first axis: band the (j, k) diagonal instead.
        ok_jk = np.abs(K - J * (n3 / n2)) <= band
        mask = np.broadcast_to(ok_jk, (n1 + 1, n2 + 1, n3 + 1)).copy()
    else:
        mask = np.ones((n1 + 1, n2 + 1, n3 + 1), dtype=bool)
    mask[0, 0, 0] = True
    mask[n1, n2, n3] = True
    return mask


def _max_outside_upper_bound(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray,
    t_ab: np.ndarray,
    t_ac: np.ndarray,
    t_bc: np.ndarray,
) -> float:
    """Max of the Carrillo–Lipman bound over cells outside ``mask``."""
    n1 = len(sa)
    worst = -np.inf
    for i in range(n1 + 1):
        outside = ~mask[i]
        if not outside.any():
            continue
        u = t_ab[i][:, None] + t_ac[i][None, :] + t_bc
        val = u[outside].max()
        if val > worst:
            worst = val
    return float(worst)


def align3_banded(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    band: int | None = None,
    certify: bool = True,
) -> Alignment3:
    """Optimal alignment by iterative band doubling.

    Parameters
    ----------
    band:
        Initial band half-width; defaults to a width that covers the
        length differences plus a margin.
    certify:
        Verify global optimality via the Carrillo–Lipman outside bound and
        double the band until certified (or the band covers the cube).
        With ``certify=False`` the first banded result is returned as-is —
        then it is only optimal *within* the band.

    Returns
    -------
    Alignment3 with ``meta["band"]`` (final half-width),
    ``meta["band_certified"]`` and ``meta["band_iterations"]``.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("align3_banded implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    if band is None:
        spread = abs(n1 - n2) + abs(n1 - n3) + abs(n2 - n3)
        band = max(4, spread // 2 + 2)
    check_positive("band", band)

    max_dim = max(n1, n2, n3, 1)
    t_ab = t_ac = t_bc = None
    if certify:
        t_ab = through_matrix(sa, sb, scheme)
        t_ac = through_matrix(sa, sc, scheme)
        t_bc = through_matrix(sb, sc, scheme)

    iterations = 0
    certified = False
    while True:
        iterations += 1
        mask = band_mask(n1, n2, n3, band)
        try:
            aln = align3_wavefront(sa, sb, sc, scheme, mask=mask)
        except RuntimeError:
            # A too-thin band can disconnect origin from terminal when the
            # lengths are very uneven; widen and retry.
            band *= 2
            continue
        covers_all = bool(mask.all())
        if covers_all:
            certified = True
            break
        if not certify:
            break
        assert t_ab is not None and t_ac is not None and t_bc is not None
        outside_max = _max_outside_upper_bound(
            sa, sb, sc, scheme, mask, t_ab, t_ac, t_bc
        )
        if aln.score >= outside_max - 1e-9:
            certified = True
            break
        band *= 2
        if band > 2 * max_dim:
            band = 2 * max_dim  # guarantees full coverage next round

    meta: dict[str, Any] = dict(aln.meta)
    meta.update(
        {
            "engine": "banded",
            "band": band,
            "band_certified": certified,
            "band_iterations": iterations,
        }
    )
    return Alignment3(rows=aln.rows, score=aln.score, meta=meta)


def score3_banded(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    band: int | None = None,
) -> float:
    """Certified-optimal SP score by iterative band doubling."""
    return align3_banded(sa, sb, sc, scheme, band=band, certify=True).score
