"""Vectorised anti-diagonal (wavefront) 3-D DP engine.

The algorithmic core of the reproduction. All cells on the plane
``i + j + k = d`` are mutually independent given planes ``d-1``, ``d-2`` and
``d-3`` (single-step moves read ``d-1``, double-step moves ``d-2``, the
triple match ``d-3``). The engine therefore sweeps ``d`` from 0 to
``n1+n2+n3``, computing each plane with whole-array NumPy operations — this
is the vectorisation that substitutes for the compiled kernels of the
original system, and the plane is also the unit that the parallel engines
(:mod:`repro.parallel`) slice across workers.

Plane representation
--------------------
Plane ``d`` is stored as a *padded* dense rectangle of shape
``(n1+2, n2+2)``: entry ``[i+1, j+1]`` holds cell ``(i, j, d-i-j)``, and the
leading pad row/column permanently holds the ``NEG`` sentinel so that
shifted reads (``i-1``/``j-1``) never need bounds checks. Cells whose
implied ``k = d-i-j`` falls outside ``[0, n3]`` also hold ``NEG``; this is
what makes the "same (i, j), previous plane" read correctly model the
``k-1`` moves. Only four plane buffers are live at a time.

Within each plane, computation is restricted to the bounding box of valid
cells, so the total vector work is close to the true cell count rather than
``3x`` it.

Steady-state allocation freedom
-------------------------------
The kernel evaluates the 7-candidate maximum as an in-place running
max/argmax over preallocated scratch from a
:class:`~repro.core.workspace.PlaneWorkspace`, and scatters argmax moves
into the move cube through a strided view instead of ``np.nonzero``
fancy indexing. Per-sweep invariants — the ``i + j`` grid, the
clip-padded substitution tables and the flat gather offsets — are built
*once per sweep* by :meth:`~repro.core.workspace.PlaneWorkspace.bind_profiles`
(triggered lazily by an identity check on the profile matrices), so each
plane costs ~25 cheap in-place ufunc calls: the ``k`` lattice is a
single subtract, validity a single compare, the AB substitution term a
plain table view and the AC/BC terms one add + one flat ``take`` each.
The score-only path additionally folds the shared ``2*gap`` term out of
six candidates and accumulates the running max directly into the output
plane (``max`` commutes exactly with adding a constant in float64, so
values are unchanged).

With a workspace supplied, the unmasked hot path performs **zero** array
allocations per plane; results stay bit-identical to the original
allocating kernel, which is kept verbatim as
:func:`compute_plane_rows_ref` for A/B benchmarking
(``benchmarks/bench_kernel.py``) and the bit-identity tests
(``tests/test_workspace.py``). The masked (Carrillo–Lipman) path may
allocate a few O(row)/O(col) temporaries while tightening the live box.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.tube import PruningTube
from repro.core.types import Alignment3, moves_to_columns
from repro.core.workspace import PlaneWorkspace
from repro.util.validation import check_sequences


def plane_bounds(
    d: int, n1: int, n2: int, n3: int
) -> tuple[int, int, int, int]:
    """Bounding box ``(ilo, ihi, jlo, jhi)`` of valid cells on plane ``d``.

    A cell ``(i, j)`` is on the plane when ``k = d - i - j`` lies in
    ``[0, n3]``; the box bounds are over all such cells. ``ihi < ilo`` means
    the plane is empty (``d`` out of range).
    """
    ilo = max(0, d - n2 - n3)
    ihi = min(n1, d)
    jlo = max(0, d - n1 - n3)
    jhi = min(n2, d)
    return ilo, ihi, jlo, jhi


def _flat(a: np.ndarray) -> np.ndarray:
    """A flat C-order view of ``a`` (copying only if non-contiguous)."""
    if a.flags.c_contiguous:
        return a.reshape(-1)
    return np.ascontiguousarray(a).reshape(-1)


def _take_better(
    best: np.ndarray,
    cand: np.ndarray,
    mv: np.ndarray,
    move: int,
    gt: np.ndarray,
) -> None:
    """Fold candidate ``cand`` into the running max/argmax in place.

    Strictly-greater replacement reproduces ``argmax``'s first-wins tie
    break over the move order 1..7, so the traceback is bit-identical to
    the 7-candidate-stack formulation.
    """
    np.greater(cand, best, out=gt)
    np.copyto(mv, np.int8(move), where=gt)
    np.maximum(best, cand, out=best)


def _band_count(t: int, h: int, w: int) -> int:
    """Pairs ``(a, b)`` with ``0 <= a < h``, ``0 <= b < w``, ``a + b <= t``.

    Inclusion-exclusion over triangular numbers: the unconstrained count
    is ``T2(t) = (t+1)(t+2)/2``; subtract the ``a >= h`` and ``b >= w``
    overshoots, add back their overlap. Lets the kernel count a plane
    block's on-cube cells in closed form instead of materialising and
    reducing a boolean mask.
    """

    def T2(x: int) -> int:
        return (x + 1) * (x + 2) // 2 if x >= 0 else 0

    return T2(t) - T2(t - h) - T2(t - w) + T2(t - h - w)


def _scatter_moves(
    move_cube: np.ndarray,
    mv: np.ndarray,
    valid: np.ndarray,
    K: np.ndarray,
    d: int,
    row_lo: int,
    jlo: int,
    dims: tuple[int, int, int],
) -> None:
    """Write the block's argmax moves into ``move_cube[i, j, d-i-j]``.

    The cube addresses of a plane block are affine in ``(i, j)`` —
    ``addr = i*(plane_sz-1) + j*n3 + d`` with ``plane_sz =
    (n2+1)*(n3+1)`` — so a single strided int8 view covers them and a
    masked ``copyto`` replaces the ``np.nonzero`` + triple fancy-index
    scatter without allocating. Every address of the view lies inside
    the cube (the corner ``(n1, n2)`` lands exactly on the last byte),
    and distinct ``(i, j)`` never alias for ``n3 >= 1``; ``n3 == 0``
    would make the ``j`` stride zero, so it falls back to the sparse
    scatter (at most one valid cell per row there).
    """
    n1, n2, n3 = dims
    if n3 == 0:
        ii, jj = np.nonzero(valid)
        move_cube[row_lo + ii, jlo + jj, K[ii, jj]] = mv[ii, jj]
        return
    plane_sz = (n2 + 1) * (n3 + 1)
    start = row_lo * (plane_sz - 1) + jlo * n3 + d
    view = np.lib.stride_tricks.as_strided(
        _flat(move_cube)[start:],
        shape=mv.shape,
        strides=(plane_sz - 1, n3),  # itemsize 1 (int8): strides in cells
    )
    np.copyto(view, mv, where=valid)


def compute_plane_rows(
    d: int,
    row_lo: int,
    row_hi: int,
    P1: np.ndarray,
    P2: np.ndarray,
    P3: np.ndarray,
    out: np.ndarray,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    dims: tuple[int, int, int],
    move_cube: np.ndarray | None = None,
    mask: np.ndarray | None = None,
    ws: PlaneWorkspace | None = None,
    tube: PruningTube | None = None,
) -> int:
    """Compute rows ``row_lo..row_hi`` (inclusive, cell coordinates) of plane
    ``d`` into the padded buffer ``out``.

    This is the kernel shared by the serial, threaded and multiprocess
    engines: each caller decides how to partition rows across workers and
    simply invokes this function per worker per plane.

    Parameters
    ----------
    d:
        Plane index (``i + j + k``).
    row_lo, row_hi:
        Inclusive ``i`` range this call is responsible for; it is clipped to
        the plane's valid bounding box.
    P1, P2, P3:
        Padded plane buffers for ``d-1``, ``d-2``, ``d-3``.
    out:
        Padded plane buffer to write; rows outside the valid box in
        ``[row_lo, row_hi]`` are reset to ``NEG``.
    sab, sac, sbc:
        Pairwise profile matrices from
        :meth:`~repro.core.scoring.ScoringScheme.profile_matrices`.
    g2:
        ``2 * scheme.gap`` (the residue-versus-two-gaps column score).
    dims:
        ``(n1, n2, n3)``.
    move_cube:
        Optional int8 cube ``(n1+1, n2+1, n3+1)``; argmax moves are scattered
        into it for traceback.
    mask:
        Optional boolean cube; cells that are False are pruned (kept at
        ``NEG``). O(n^3) memory — kept for diagnostics and arbitrary
        (non-interval) keep-sets; production pruning passes ``tube``.
    ws:
        Scratch workspace; one per concurrently-running worker. When
        None a transient workspace is built (correct but allocating —
        every engine in the repo passes one).
    tube:
        Optional :class:`~repro.core.tube.PruningTube`: per-``(i, j)``
        keep-intervals of ``k`` in O(n^2) memory. The validity test is
        two compares against sliced interval views (its intervals are
        clamped to ``[0, n3]``, so it subsumes the cube-bounds check),
        and the live box is tightened exactly as for ``mask``.
        Mutually exclusive with ``mask``.

    Returns
    -------
    int
        Number of valid (computed, unpruned) cells in this row block.
    """
    n1, n2, n3 = dims
    # plane_bounds(), inlined: this is the hottest function in the repo.
    row_lo = max(row_lo, d - n2 - n3, 0)
    row_hi = min(row_hi, n1, d)
    jlo = max(0, d - n1 - n3)
    jhi = min(n2, d)
    if row_lo > row_hi or jlo > jhi:
        return 0

    # Reset target rows: stale values from plane d-4 live in this buffer.
    out[row_lo + 1 : row_hi + 2, :] = NEG

    if d == 0:
        # Only the origin exists; it has no predecessors. (Its box is
        # the single cell (0, 0) whenever this call covers row 0.)
        origin_kept = (mask is None or bool(mask[0, 0, 0])) and (
            tube is None or tube.contains(0, 0, 0)
        )
        if row_lo == 0 and jlo == 0 and origin_kept:
            out[1, 1] = 0.0
            return 1
        return 0

    if ws is None:
        ws = PlaneWorkspace(dims)
    if not ws.bound_to(sab, sac, sbc, dims):
        # First plane of this sweep: build the per-sweep tables once.
        ws.bind_profiles(sab, sac, sbc, dims)

    (
        K,
        kc,
        valid,
        tmp,
        fi,
        fi2,
        gv2,
        c,
        mv,
        d0v,
        g_ab,
        rtac,
        ctbc,
    ) = ws.box_views(row_lo, row_hi, jlo, jhi)
    np.subtract(d, d0v, out=K)
    # kc = clip(k, 0, n3): the shared gather index, and cheap validity —
    # a cell is on the cube exactly when clamping was a no-op. The box's
    # K range is known in Python ([d-row_hi-jhi, d-row_lo-jlo]), so each
    # one-sided clamp runs only when it can actually bite.
    kmin = d - row_hi - jhi
    kmax = d - row_lo - jlo
    if kmin >= 0:
        if kmax <= n3:
            kc = K  # every cell is on the cube; no clamp, all valid
        else:
            np.minimum(K, n3, out=kc)
    elif kmax <= n3:
        np.maximum(K, 0, out=kc)
    else:
        np.maximum(K, 0, out=kc)
        np.minimum(kc, n3, out=kc)
    all_valid = kc is K
    pruned = mask is not None or tube is not None
    fast = move_cube is None and not pruned
    if fast:
        # Score-only, unmasked: only the *invalid* cells are ever
        # needed (NEG write-back and the complement count).
        if not all_valid:
            np.not_equal(K, kc, out=tmp)
    elif tube is not None:
        # Interval test: klo <= K <= khi. The tube's intervals are
        # clamped to [0, n3], so this subsumes the cube-bounds check —
        # two compares against plain 2-D views, no cube gather.
        np.greater_equal(
            K, tube.klo[row_lo : row_hi + 1, jlo : jhi + 1], out=valid
        )
        np.less_equal(
            K, tube.khi[row_lo : row_hi + 1, jlo : jhi + 1], out=tmp
        )
        valid &= tmp
    else:
        np.equal(K, kc, out=valid)
        if mask is not None:
            # Gather mask[i, j, kc] through a flat index buffer.
            np.add(ws.m0[row_lo : row_hi + 1, jlo : jhi + 1], kc, out=fi)
            _flat(mask).take(fi, out=tmp)
            valid &= tmp

    if pruned:
        # Tighten the computed box to the mask's live cells: with aggressive
        # Carrillo–Lipman pruning the live region is a thin tube around the
        # main diagonal, so this is where the pruning speedup comes from.
        # (The full row range was already reset to NEG above, so skipped
        # cells correctly read as unreachable from later planes.)
        rows_any = valid.any(axis=1)
        if not rows_any.any():
            return 0
        r_lo = int(rows_any.argmax())
        r_hi = len(rows_any) - 1 - int(rows_any[::-1].argmax())
        cols_any = valid.any(axis=0)
        col_lo = int(cols_any.argmax())
        col_hi = len(cols_any) - 1 - int(cols_any[::-1].argmax())
        row_lo, row_hi = row_lo + r_lo, row_lo + r_hi
        jlo, jhi = jlo + col_lo, jlo + col_hi
        # Keep the *computed* K/kc/valid data in place (offset views);
        # re-derive the still-unwritten scratch at the new box shape.
        K = K[r_lo : r_hi + 1, col_lo : col_hi + 1]
        kc = kc[r_lo : r_hi + 1, col_lo : col_hi + 1]
        valid = valid[r_lo : r_hi + 1, col_lo : col_hi + 1]
        h = row_hi - row_lo + 1
        w = jhi - jlo + 1
        tmp = ws.tmp[:h, :w]
        fi2 = ws._idx2_flat[: 2 * h * w].reshape(2, h, w)
        gv2 = ws._gacbc_flat[: 2 * h * w].reshape(2, h, w)
        c = ws.cand[:h, :w]
        mv = ws.moves[:h, :w]
        g_ab = ws.tab_ab[row_lo : row_hi + 1, jlo : jhi + 1]
        rtac = ws.rows_tac[row_lo : row_hi + 1]
        ctbc = ws.cols_tbc[jlo : jhi + 1]

    # Shifted reads of previous planes. Padded buffers make the i-1 / j-1
    # shifts unconditional: the pad row/col holds NEG.
    r0, r1 = row_lo + 1, row_hi + 2  # padded row slice for (i)
    c0, c1 = jlo + 1, jhi + 2
    p1_00 = P1[r0:r1, c0:c1]  # (i,   j)   -> move C
    p1_10 = P1[r0 - 1 : r1 - 1, c0:c1]  # (i-1, j)   -> move A
    p1_01 = P1[r0:r1, c0 - 1 : c1 - 1]  # (i,   j-1) -> move B
    p2_11 = P2[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]  # move AB
    p2_10 = P2[r0 - 1 : r1 - 1, c0:c1]  # move AC
    p2_01 = P2[r0:r1, c0 - 1 : c1 - 1]  # move BC
    p3_11 = P3[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]  # move ABC

    # Substitution terms from the per-sweep clip-padded tables: AB is a
    # plain view (it only depends on i, j), AC and BC come out of one
    # fused flat ``take`` over the concatenated table (cols_tbc carries
    # tab_bc's offset). Where an index was clamped the gathered value is
    # garbage, but the corresponding plane read is NEG (invalid source),
    # so the candidate can never win; the tables reproduce the reference
    # kernel's clamped reads exactly, garbage included.
    np.add(rtac, kc, out=fi2[0])
    np.add(ctbc, kc, out=fi2[1])
    ws._tab_acbc_flat.take(fi2, out=gv2)
    g_ac = gv2[0]
    g_bc = gv2[1]

    # Running max/argmax over the 7 move candidates, accumulated directly
    # into the output plane (distinct buffer from P1/P2/P3: the rotation
    # keeps four live planes). Addition order within each candidate
    # matches the stack formulation exactly, and ``max`` is exact for
    # float64, so the plane is bit-identical to the reference kernel.
    best = out[r0:r1, c0:c1]
    if move_cube is None:
        # Score-only: moves 1-6 all add the same g2 term, and float64
        # ``max`` commutes exactly with adding a constant (monotone
        # rounding), so fold g2 out of the chain and add it once.
        np.maximum(p1_10, p1_01, out=best)  # moves 1, 2: A, B
        np.maximum(best, p1_00, out=best)  # move 4: C
        np.add(p2_11, g_ab, out=c)  # move 3: AB
        np.maximum(best, c, out=best)
        np.add(p2_10, g_ac, out=c)  # move 5: AC
        np.maximum(best, c, out=best)
        np.add(p2_01, g_bc, out=c)  # move 6: BC
        np.maximum(best, c, out=best)
        best += g2
        np.add(p3_11, g_ab, out=c)
        c += g_ac
        c += g_bc  # move 7: ABC
        np.maximum(best, c, out=best)
    else:
        # Move tracking compares g2-inclusive candidates in order 1..7
        # (ties must break exactly like the reference argmax).
        mv.fill(1)
        np.add(p1_10, g2, out=best)  # move 1: A
        np.add(p1_01, g2, out=c)  # move 2: B
        _take_better(best, c, mv, 2, tmp)
        np.add(p2_11, g_ab, out=c)
        c += g2  # move 3: AB
        _take_better(best, c, mv, 3, tmp)
        np.add(p1_00, g2, out=c)  # move 4: C
        _take_better(best, c, mv, 4, tmp)
        np.add(p2_10, g_ac, out=c)
        c += g2  # move 5: AC
        _take_better(best, c, mv, 5, tmp)
        np.add(p2_01, g_bc, out=c)
        c += g2  # move 6: BC
        _take_better(best, c, mv, 6, tmp)
        np.add(p3_11, g_ab, out=c)
        c += g_ac
        c += g_bc  # move 7: ABC
        _take_better(best, c, mv, 7, tmp)

    # The origin may sit inside this block on plane 0 only; for d >= 1 every
    # valid cell has at least one legal predecessor, except the origin's
    # plane which was handled above. On the fast path ``tmp`` already
    # holds the invalid cells.
    h = row_hi - row_lo + 1
    w = jhi - jlo + 1
    if fast:
        if all_valid:
            return h * w
        np.copyto(best, NEG, where=tmp)
        # Valid cells are 0 <= K <= n3 with K affine in (i, j): count
        # them in closed form instead of reducing the mask.
        return _band_count(kmax, h, w) - _band_count(kmax - n3 - 1, h, w)

    np.logical_not(valid, out=tmp)
    np.copyto(best, NEG, where=tmp)

    if move_cube is not None:
        _scatter_moves(move_cube, mv, valid, K, d, row_lo, jlo, dims)

    if not pruned:
        # Unmasked traceback sweep: validity is still the pure band
        # condition, so the closed-form count applies here too.
        return _band_count(kmax, h, w) - _band_count(kmax - n3 - 1, h, w)
    return int(np.count_nonzero(valid))


def compute_plane_rows_ref(
    d: int,
    row_lo: int,
    row_hi: int,
    P1: np.ndarray,
    P2: np.ndarray,
    P3: np.ndarray,
    out: np.ndarray,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    dims: tuple[int, int, int],
    move_cube: np.ndarray | None = None,
    mask: np.ndarray | None = None,
) -> int:
    """The original allocating plane kernel, kept verbatim.

    Builds the full ``(7,) + shape`` candidate stack and ~10 fresh
    arrays per call. Serves as the A/B baseline for
    ``benchmarks/bench_kernel.py`` and as the oracle the zero-allocation
    :func:`compute_plane_rows` must match bit-for-bit
    (``tests/test_workspace.py``). Not used by any engine.
    """
    n1, n2, n3 = dims
    ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
    row_lo = max(row_lo, ilo)
    row_hi = min(row_hi, ihi)
    if row_lo > row_hi or jlo > jhi:
        return 0

    # Reset target rows: stale values from plane d-4 live in this buffer.
    out[row_lo + 1 : row_hi + 2, :] = NEG

    I = np.arange(row_lo, row_hi + 1)[:, None]
    J = np.arange(jlo, jhi + 1)[None, :]
    K = d - I - J
    valid = (K >= 0) & (K <= n3)
    if mask is not None:
        Ic = I
        Jc = np.broadcast_to(J, K.shape)
        Kc = np.clip(K, 0, n3)
        valid = valid & mask[Ic, Jc, Kc]
    if d == 0:
        # Only the origin exists; it has no predecessors.
        if row_lo == 0 and jlo == 0 and (valid.size and valid[0, 0]):
            out[1, 1] = 0.0
            return 1
        return 0

    if mask is not None:
        rows_any = valid.any(axis=1)
        if not rows_any.any():
            return 0
        r_lo = int(rows_any.argmax())
        r_hi = len(rows_any) - 1 - int(rows_any[::-1].argmax())
        cols_any = valid.any(axis=0)
        col_lo = int(cols_any.argmax())
        col_hi = len(cols_any) - 1 - int(cols_any[::-1].argmax())
        row_lo, row_hi = row_lo + r_lo, row_lo + r_hi
        jlo, jhi = jlo + col_lo, jlo + col_hi
        I = I[r_lo : r_hi + 1]
        J = J[:, col_lo : col_hi + 1]
        K = d - I - J
        valid = valid[r_lo : r_hi + 1, col_lo : col_hi + 1]

    r0, r1 = row_lo + 1, row_hi + 2
    c0, c1 = jlo + 1, jhi + 2
    p1_00 = P1[r0:r1, c0:c1]
    p1_10 = P1[r0 - 1 : r1 - 1, c0:c1]
    p1_01 = P1[r0:r1, c0 - 1 : c1 - 1]
    p2_11 = P2[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]
    p2_10 = P2[r0 - 1 : r1 - 1, c0:c1]
    p2_01 = P2[r0:r1, c0 - 1 : c1 - 1]
    p3_11 = P3[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]

    Ic = np.clip(I - 1, 0, max(n1 - 1, 0))
    Jc = np.clip(J - 1, 0, max(n2 - 1, 0))
    Kc = np.clip(K - 1, 0, max(n3 - 1, 0))
    if n1 and n2:
        g_ab = sab[Ic, Jc]
    else:
        g_ab = np.zeros(K.shape)
    if n1 and n3:
        g_ac = sac[Ic, Kc]
    else:
        g_ac = np.zeros(K.shape)
    if n2 and n3:
        g_bc = sbc[Jc, Kc]
    else:
        g_bc = np.zeros(K.shape)

    cand = np.empty((7,) + K.shape, dtype=np.float64)
    cand[0] = p1_10 + g2  # move 1: A
    cand[1] = p1_01 + g2  # move 2: B
    cand[2] = p2_11 + g_ab + g2  # move 3: AB
    cand[3] = p1_00 + g2  # move 4: C
    cand[4] = p2_10 + g_ac + g2  # move 5: AC
    cand[5] = p2_01 + g_bc + g2  # move 6: BC
    cand[6] = p3_11 + g_ab + g_ac + g_bc  # move 7: ABC

    best = cand.max(axis=0)
    np.copyto(best, NEG, where=~valid)
    out[r0:r1, c0:c1] = best

    if move_cube is not None:
        moves = (cand.argmax(axis=0) + 1).astype(np.int8)
        ii, jj = np.nonzero(valid)
        move_cube[row_lo + ii, jlo + jj, K[ii, jj]] = moves[ii, jj]

    return int(valid.sum())


def _tube_row_ranges(
    tube: PruningTube, dmax: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-plane kernel row ranges for a tube-pruned sweep.

    Starts from the tube's live-row hulls and widens each plane's range
    to cover the hulls of the next three planes, plus one row of margin:
    the plane buffers rotate with period 4, and the kernel resets only
    the rows it is asked to compute, so plane ``d``'s reset must cover
    every row that the live cells of planes ``d+1 .. d+3`` read (their
    shifted predecessor reads touch rows ``i-1`` and ``i``). Rows left
    outside a range keep stale plane ``d-4`` values, but only cells the
    tube marks invalid ever read them — and those are overwritten with
    ``NEG`` regardless of what they computed.
    """
    rlo, rhi = tube.plane_row_windows()
    n1p = tube.klo.shape[0]
    empty = rhi < rlo
    lo_src = np.where(empty, n1p + dmax, rlo)
    hi_src = np.where(empty, -(n1p + dmax), rhi)
    lo, hi = lo_src.copy(), hi_src.copy()
    for s in (1, 2, 3):
        np.minimum(lo[:-s], lo_src[s:], out=lo[:-s])
        np.maximum(hi[:-s], hi_src[s:], out=hi[:-s])
    return lo - 1, hi + 1


@dataclass
class WavefrontResult:
    """Output of a wavefront sweep."""

    score: float
    move_cube: np.ndarray | None
    cells_computed: int
    captured_slab: np.ndarray | None
    planes_swept: int


def wavefront_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    score_only: bool = False,
    mask: np.ndarray | None = None,
    capture_level: int | None = None,
    workspace: PlaneWorkspace | None = None,
    tube: PruningTube | None = None,
) -> WavefrontResult:
    """Run the full wavefront sweep.

    Parameters
    ----------
    score_only:
        Skip move-cube storage; memory drops from O(n^3) to O(n^2).
    mask:
        Optional Carrillo–Lipman pruning cube (see :mod:`repro.core.bounds`).
    tube:
        Optional O(n^2) :class:`~repro.core.tube.PruningTube` keep-region
        (the production pruning path); mutually exclusive with ``mask``.
    capture_level:
        When given, collect the full slab ``F[capture_level, j, k]`` during
        the sweep (used by the Hirschberg divide-and-conquer, which needs
        forward scores on one ``i`` level but not the whole cube).
    workspace:
        Optional :class:`~repro.core.workspace.PlaneWorkspace` to source
        the plane buffers and kernel scratch from. Sequential sweeps
        through one workspace (Hirschberg recursion, the persistent
        pool's job loop) skip all steady-state allocation. Not
        thread-safe: never share one across concurrent sweeps.
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError(
            "wavefront_sweep implements the linear gap model; "
            "use repro.core.affine for affine gaps"
        )
    n1, n2, n3 = len(sa), len(sb), len(sc)
    if mask is not None and tube is not None:
        raise ValueError("mask and tube are mutually exclusive")
    if mask is not None and mask.shape != (n1 + 1, n2 + 1, n3 + 1):
        raise ValueError(f"mask shape {mask.shape} does not match cube")
    if tube is not None and tube.shape != (n1 + 1, n2 + 1, n3 + 1):
        raise ValueError(f"tube shape {tube.shape} does not match cube")
    if capture_level is not None and not 0 <= capture_level <= n1:
        raise ValueError(
            f"capture_level must be in [0, {n1}], got {capture_level}"
        )
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    dims = (n1, n2, n3)

    ws = (
        PlaneWorkspace(dims)
        if workspace is None
        else workspace.reserve(n1, n2, n3)
    )
    planes = ws.planes_for(n1, n2)
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    # The captured slab is part of the *result* (Hirschberg holds the
    # forward slab across the backward sweep), so it must be a fresh
    # allocation, never a workspace view the next sweep would clobber.
    slab = (
        np.full((n2 + 1, n3 + 1), NEG) if capture_level is not None else None
    )

    observing = _obs.active()
    t_sweep = time.perf_counter() if observing else 0.0
    if observing:
        plane_cell_log: list[int] = []
        plane_dur_log: list[float] = []
    cells = 0
    dmax = n1 + n2 + n3
    row_lo_by_d, row_hi_by_d = (
        _tube_row_ranges(tube, dmax)
        if tube is not None and capture_level is None
        else (None, None)
    )
    for d in range(dmax + 1):
        out = planes[d % 4]
        t0 = time.perf_counter() if observing else 0.0
        plane_cells = compute_plane_rows(
            d,
            0 if row_lo_by_d is None else int(row_lo_by_d[d]),
            n1 if row_hi_by_d is None else int(row_hi_by_d[d]),
            planes[(d - 1) % 4],
            planes[(d - 2) % 4],
            planes[(d - 3) % 4],
            out,
            sab,
            sac,
            sbc,
            g2,
            dims,
            move_cube=move_cube,
            mask=mask,
            ws=ws,
            tube=tube,
        )
        if observing:
            plane_cell_log.append(plane_cells)
            plane_dur_log.append(time.perf_counter() - t0)
        cells += plane_cells
        if slab is not None:
            _capture_row(out, d, capture_level, n2, n3, slab)

    if observing:
        _obs.record_planes("wavefront", plane_cell_log, plane_dur_log)
        _obs.record_sweep(
            "wavefront",
            cells=cells,
            seconds=time.perf_counter() - t_sweep,
            peak_plane_bytes=sum(p.nbytes for p in planes),
            move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
        )
    score = float(planes[dmax % 4][n1 + 1, n2 + 1])
    return WavefrontResult(
        score=score,
        move_cube=move_cube,
        cells_computed=cells,
        captured_slab=slab,
        planes_swept=dmax + 1,
    )


def _capture_row(
    plane: np.ndarray,
    d: int,
    level: int,
    n2: int,
    n3: int,
    slab: np.ndarray,
) -> None:
    """Copy the ``i == level`` row of plane ``d`` into ``slab[j, k]``."""
    jlo = max(0, d - level - n3)
    jhi = min(n2, d - level)
    if jlo > jhi:
        return
    js = np.arange(jlo, jhi + 1)
    ks = d - level - js
    slab[js, ks] = plane[level + 1, jlo + 1 : jhi + 2]


def align3_wavefront(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
    workspace: PlaneWorkspace | None = None,
    tube: PruningTube | None = None,
) -> Alignment3:
    """Optimal three-way alignment via the vectorised wavefront engine."""
    from repro.obs import trace as _trace

    with _trace.span("wavefront.sweep"):
        res = wavefront_sweep(
            sa,
            sb,
            sc,
            scheme,
            score_only=False,
            mask=mask,
            workspace=workspace,
            tube=tube,
        )
    if res.score <= NEG / 2:
        raise RuntimeError(
            "terminal cell unreachable (over-aggressive pruning mask?)"
        )
    assert res.move_cube is not None
    with _trace.span("wavefront.traceback"):
        moves = traceback_moves(res.move_cube)
        cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "wavefront",
        "cells": res.cells_computed,
        "planes": res.planes_swept,
    }
    return Alignment3(rows=rows, score=res.score, meta=meta)  # type: ignore[arg-type]


def score3_wavefront(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
    workspace: PlaneWorkspace | None = None,
    tube: PruningTube | None = None,
) -> float:
    """Optimal SP score via a memory-light (O(n^2)) wavefront sweep."""
    return wavefront_sweep(
        sa,
        sb,
        sc,
        scheme,
        score_only=True,
        mask=mask,
        workspace=workspace,
        tube=tube,
    ).score
