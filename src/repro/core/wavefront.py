"""Vectorised anti-diagonal (wavefront) 3-D DP engine.

The algorithmic core of the reproduction. All cells on the plane
``i + j + k = d`` are mutually independent given planes ``d-1``, ``d-2`` and
``d-3`` (single-step moves read ``d-1``, double-step moves ``d-2``, the
triple match ``d-3``). The engine therefore sweeps ``d`` from 0 to
``n1+n2+n3``, computing each plane with whole-array NumPy operations — this
is the vectorisation that substitutes for the compiled kernels of the
original system, and the plane is also the unit that the parallel engines
(:mod:`repro.parallel`) slice across workers.

Plane representation
--------------------
Plane ``d`` is stored as a *padded* dense rectangle of shape
``(n1+2, n2+2)``: entry ``[i+1, j+1]`` holds cell ``(i, j, d-i-j)``, and the
leading pad row/column permanently holds the ``NEG`` sentinel so that
shifted reads (``i-1``/``j-1``) never need bounds checks. Cells whose
implied ``k = d-i-j`` falls outside ``[0, n3]`` also hold ``NEG``; this is
what makes the "same (i, j), previous plane" read correctly model the
``k-1`` moves. Only four plane buffers are live at a time.

Within each plane, computation is restricted to the bounding box of valid
cells, so the total vector work is close to the true cell count rather than
``3x`` it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.util.validation import check_sequences


def plane_bounds(
    d: int, n1: int, n2: int, n3: int
) -> tuple[int, int, int, int]:
    """Bounding box ``(ilo, ihi, jlo, jhi)`` of valid cells on plane ``d``.

    A cell ``(i, j)`` is on the plane when ``k = d - i - j`` lies in
    ``[0, n3]``; the box bounds are over all such cells. ``ihi < ilo`` means
    the plane is empty (``d`` out of range).
    """
    ilo = max(0, d - n2 - n3)
    ihi = min(n1, d)
    jlo = max(0, d - n1 - n3)
    jhi = min(n2, d)
    return ilo, ihi, jlo, jhi


def compute_plane_rows(
    d: int,
    row_lo: int,
    row_hi: int,
    P1: np.ndarray,
    P2: np.ndarray,
    P3: np.ndarray,
    out: np.ndarray,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    dims: tuple[int, int, int],
    move_cube: np.ndarray | None = None,
    mask: np.ndarray | None = None,
) -> int:
    """Compute rows ``row_lo..row_hi`` (inclusive, cell coordinates) of plane
    ``d`` into the padded buffer ``out``.

    This is the kernel shared by the serial, threaded and multiprocess
    engines: each caller decides how to partition rows across workers and
    simply invokes this function per worker per plane.

    Parameters
    ----------
    d:
        Plane index (``i + j + k``).
    row_lo, row_hi:
        Inclusive ``i`` range this call is responsible for; it is clipped to
        the plane's valid bounding box.
    P1, P2, P3:
        Padded plane buffers for ``d-1``, ``d-2``, ``d-3``.
    out:
        Padded plane buffer to write; rows outside the valid box in
        ``[row_lo, row_hi]`` are reset to ``NEG``.
    sab, sac, sbc:
        Pairwise profile matrices from
        :meth:`~repro.core.scoring.ScoringScheme.profile_matrices`.
    g2:
        ``2 * scheme.gap`` (the residue-versus-two-gaps column score).
    dims:
        ``(n1, n2, n3)``.
    move_cube:
        Optional int8 cube ``(n1+1, n2+1, n3+1)``; argmax moves are scattered
        into it for traceback.
    mask:
        Optional boolean cube; cells that are False are pruned (kept at
        ``NEG``).

    Returns
    -------
    int
        Number of valid (computed, unpruned) cells in this row block.
    """
    n1, n2, n3 = dims
    ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
    row_lo = max(row_lo, ilo)
    row_hi = min(row_hi, ihi)
    if row_lo > row_hi or jlo > jhi:
        return 0

    # Reset target rows: stale values from plane d-4 live in this buffer.
    out[row_lo + 1 : row_hi + 2, :] = NEG

    I = np.arange(row_lo, row_hi + 1)[:, None]
    J = np.arange(jlo, jhi + 1)[None, :]
    K = d - I - J
    valid = (K >= 0) & (K <= n3)
    if mask is not None:
        Ic = I
        Jc = np.broadcast_to(J, K.shape)
        Kc = np.clip(K, 0, n3)
        valid = valid & mask[Ic, Jc, Kc]
    if d == 0:
        # Only the origin exists; it has no predecessors.
        if row_lo == 0 and jlo == 0 and (valid.size and valid[0, 0]):
            out[1, 1] = 0.0
            return 1
        return 0

    if mask is not None:
        # Tighten the computed box to the mask's live cells: with aggressive
        # Carrillo–Lipman pruning the live region is a thin tube around the
        # main diagonal, so this is where the pruning speedup comes from.
        # (The full row range was already reset to NEG above, so skipped
        # cells correctly read as unreachable from later planes.)
        rows_any = valid.any(axis=1)
        if not rows_any.any():
            return 0
        r_lo = int(rows_any.argmax())
        r_hi = len(rows_any) - 1 - int(rows_any[::-1].argmax())
        cols_any = valid.any(axis=0)
        col_lo = int(cols_any.argmax())
        col_hi = len(cols_any) - 1 - int(cols_any[::-1].argmax())
        row_lo, row_hi = row_lo + r_lo, row_lo + r_hi
        jlo, jhi = jlo + col_lo, jlo + col_hi
        I = I[r_lo : r_hi + 1]
        J = J[:, col_lo : col_hi + 1]
        K = d - I - J
        valid = valid[r_lo : r_hi + 1, col_lo : col_hi + 1]

    # Shifted reads of previous planes. Padded buffers make the i-1 / j-1
    # shifts unconditional: the pad row/col holds NEG.
    r0, r1 = row_lo + 1, row_hi + 2  # padded row slice for (i)
    c0, c1 = jlo + 1, jhi + 2
    p1_00 = P1[r0:r1, c0:c1]  # (i,   j)   -> move C
    p1_10 = P1[r0 - 1 : r1 - 1, c0:c1]  # (i-1, j)   -> move A
    p1_01 = P1[r0:r1, c0 - 1 : c1 - 1]  # (i,   j-1) -> move B
    p2_11 = P2[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]  # move AB
    p2_10 = P2[r0 - 1 : r1 - 1, c0:c1]  # move AC
    p2_01 = P2[r0:r1, c0 - 1 : c1 - 1]  # move BC
    p3_11 = P3[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1]  # move ABC

    # Substitution gathers. Where an index underflows the gather value is
    # garbage, but the corresponding plane read is NEG (invalid source), so
    # the candidate can never win; clipping just keeps indexing legal.
    Ic = np.clip(I - 1, 0, max(n1 - 1, 0))
    Jc = np.clip(J - 1, 0, max(n2 - 1, 0))
    Kc = np.clip(K - 1, 0, max(n3 - 1, 0))
    if n1 and n2:
        g_ab = sab[Ic, Jc]
    else:
        g_ab = np.zeros(K.shape)
    if n1 and n3:
        g_ac = sac[Ic, Kc]
    else:
        g_ac = np.zeros(K.shape)
    if n2 and n3:
        g_bc = sbc[Jc, Kc]
    else:
        g_bc = np.zeros(K.shape)

    cand = np.empty((7,) + K.shape, dtype=np.float64)
    cand[0] = p1_10 + g2  # move 1: A
    cand[1] = p1_01 + g2  # move 2: B
    cand[2] = p2_11 + g_ab + g2  # move 3: AB
    cand[3] = p1_00 + g2  # move 4: C
    cand[4] = p2_10 + g_ac + g2  # move 5: AC
    cand[5] = p2_01 + g_bc + g2  # move 6: BC
    cand[6] = p3_11 + g_ab + g_ac + g_bc  # move 7: ABC

    best = cand.max(axis=0)
    # The origin may sit inside this block on plane 0 only; for d >= 1 every
    # valid cell has at least one legal predecessor, except the origin's
    # plane which was handled above.
    np.copyto(best, NEG, where=~valid)
    out[r0:r1, c0:c1] = best

    if move_cube is not None:
        moves = (cand.argmax(axis=0) + 1).astype(np.int8)
        ii, jj = np.nonzero(valid)
        move_cube[row_lo + ii, jlo + jj, K[ii, jj]] = moves[ii, jj]

    return int(valid.sum())


@dataclass
class WavefrontResult:
    """Output of a wavefront sweep."""

    score: float
    move_cube: np.ndarray | None
    cells_computed: int
    captured_slab: np.ndarray | None
    planes_swept: int


def wavefront_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    score_only: bool = False,
    mask: np.ndarray | None = None,
    capture_level: int | None = None,
) -> WavefrontResult:
    """Run the full wavefront sweep.

    Parameters
    ----------
    score_only:
        Skip move-cube storage; memory drops from O(n^3) to O(n^2).
    mask:
        Optional Carrillo–Lipman pruning cube (see :mod:`repro.core.bounds`).
    capture_level:
        When given, collect the full slab ``F[capture_level, j, k]`` during
        the sweep (used by the Hirschberg divide-and-conquer, which needs
        forward scores on one ``i`` level but not the whole cube).
    """
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError(
            "wavefront_sweep implements the linear gap model; "
            "use repro.core.affine for affine gaps"
        )
    n1, n2, n3 = len(sa), len(sb), len(sc)
    if mask is not None and mask.shape != (n1 + 1, n2 + 1, n3 + 1):
        raise ValueError(f"mask shape {mask.shape} does not match cube")
    if capture_level is not None and not 0 <= capture_level <= n1:
        raise ValueError(
            f"capture_level must be in [0, {n1}], got {capture_level}"
        )
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    dims = (n1, n2, n3)

    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    slab = (
        np.full((n2 + 1, n3 + 1), NEG) if capture_level is not None else None
    )

    observing = _obs.active()
    t_sweep = time.perf_counter() if observing else 0.0
    if observing:
        plane_cell_log: list[int] = []
        plane_dur_log: list[float] = []
    cells = 0
    dmax = n1 + n2 + n3
    for d in range(dmax + 1):
        out = planes[d % 4]
        t0 = time.perf_counter() if observing else 0.0
        plane_cells = compute_plane_rows(
            d,
            0,
            n1,
            planes[(d - 1) % 4],
            planes[(d - 2) % 4],
            planes[(d - 3) % 4],
            out,
            sab,
            sac,
            sbc,
            g2,
            dims,
            move_cube=move_cube,
            mask=mask,
        )
        if observing:
            plane_cell_log.append(plane_cells)
            plane_dur_log.append(time.perf_counter() - t0)
        cells += plane_cells
        if slab is not None:
            _capture_row(out, d, capture_level, n2, n3, slab)

    if observing:
        _obs.record_planes("wavefront", plane_cell_log, plane_dur_log)
        _obs.record_sweep(
            "wavefront",
            cells=cells,
            seconds=time.perf_counter() - t_sweep,
            peak_plane_bytes=sum(p.nbytes for p in planes),
            move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
        )
    score = float(planes[dmax % 4][n1 + 1, n2 + 1])
    return WavefrontResult(
        score=score,
        move_cube=move_cube,
        cells_computed=cells,
        captured_slab=slab,
        planes_swept=dmax + 1,
    )


def _capture_row(
    plane: np.ndarray,
    d: int,
    level: int,
    n2: int,
    n3: int,
    slab: np.ndarray,
) -> None:
    """Copy the ``i == level`` row of plane ``d`` into ``slab[j, k]``."""
    jlo = max(0, d - level - n3)
    jhi = min(n2, d - level)
    if jlo > jhi:
        return
    js = np.arange(jlo, jhi + 1)
    ks = d - level - js
    slab[js, ks] = plane[level + 1, jlo + 1 : jhi + 2]


def align3_wavefront(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
) -> Alignment3:
    """Optimal three-way alignment via the vectorised wavefront engine."""
    from repro.obs import trace as _trace

    with _trace.span("wavefront.sweep"):
        res = wavefront_sweep(sa, sb, sc, scheme, score_only=False, mask=mask)
    if res.score <= NEG / 2:
        raise RuntimeError(
            "terminal cell unreachable (over-aggressive pruning mask?)"
        )
    assert res.move_cube is not None
    with _trace.span("wavefront.traceback"):
        moves = traceback_moves(res.move_cube)
        cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "wavefront",
        "cells": res.cells_computed,
        "planes": res.planes_swept,
    }
    return Alignment3(rows=rows, score=res.score, meta=meta)  # type: ignore[arg-type]


def score3_wavefront(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    mask: np.ndarray | None = None,
) -> float:
    """Optimal SP score via a memory-light (O(n^2)) wavefront sweep."""
    return wavefront_sweep(
        sa, sb, sc, scheme, score_only=True, mask=mask
    ).score
