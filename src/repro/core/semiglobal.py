"""Semi-global (overlap) three-sequence alignment.

End gaps are free: the alignment may *start* at any cell on the three
lower faces of the cube (some prefixes unconsumed at zero cost) and *end*
at any cell on the three upper faces (suffixes unconsumed). This is the
three-way generalisation of pairwise overlap alignment — the right mode
when the sequences are fragments that overlap rather than correspond
end-to-end (contig layout, the assembly use case the paper family's
introductions mention).

Semantics: leading/trailing residue-versus-gap pairs are simply not
charged. Interior gaps cost as usual. The DP is the global recurrence
with (a) zero initialisation over the faces ``i=0 | j=0 | k=0`` and (b)
the answer maximised over the faces ``i=n1 | j=n2 | k=n3``; the traceback
is completed into a full-length alignment by padding the unconsumed
prefixes/suffixes with free end gaps.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.core.types import Alignment3, move_delta, moves_to_columns
from repro.core.wavefront import plane_bounds
from repro.seqio.alphabet import GAP_CHAR
from repro.util.validation import check_sequences


def semiglobal_dp3d_matrix(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> tuple[np.ndarray, np.ndarray]:
    """Scalar reference fill. ``M == 0`` marks a free-start cell."""
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("semiglobal implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    D = np.full((n1 + 1, n2 + 1, n3 + 1), NEG)
    M = np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    for i in range(n1 + 1):
        for j in range(n2 + 1):
            for k in range(n3 + 1):
                best, move = (
                    (0.0, 0) if (i == 0 or j == 0 or k == 0) else (NEG, 0)
                )
                if i >= 1:
                    v = D[i - 1, j, k] + g2
                    if v > best:
                        best, move = v, 1
                if j >= 1:
                    v = D[i, j - 1, k] + g2
                    if v > best:
                        best, move = v, 2
                if k >= 1:
                    v = D[i, j, k - 1] + g2
                    if v > best:
                        best, move = v, 4
                if i >= 1 and j >= 1:
                    v = D[i - 1, j - 1, k] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best, move = v, 3
                if i >= 1 and k >= 1:
                    v = D[i - 1, j, k - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best, move = v, 5
                if j >= 1 and k >= 1:
                    v = D[i, j - 1, k - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best, move = v, 6
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        D[i - 1, j - 1, k - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best, move = v, 7
                D[i, j, k] = best
                M[i, j, k] = move
    return D, M


def _best_end_cell(
    D: np.ndarray, n1: int, n2: int, n3: int
) -> tuple[float, tuple[int, int, int]]:
    """Maximum over the three upper faces."""
    best = NEG
    cell = (n1, n2, n3)
    for j in range(n2 + 1):
        for k in range(n3 + 1):
            if D[n1, j, k] > best:
                best, cell = D[n1, j, k], (n1, j, k)
    for i in range(n1 + 1):
        for k in range(n3 + 1):
            if D[i, n2, k] > best:
                best, cell = D[i, n2, k], (i, n2, k)
    for i in range(n1 + 1):
        for j in range(n2 + 1):
            if D[i, j, n3] > best:
                best, cell = D[i, j, n3], (i, j, n3)
    return float(best), cell


def score3_semiglobal(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> float:
    """Best overlap score (free end gaps)."""
    return semiglobal_sweep(sa, sb, sc, scheme, score_only=True)[0]


def semiglobal_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    score_only: bool = False,
) -> tuple[float, tuple[int, int, int], np.ndarray | None]:
    """Vectorised overlap sweep; returns (score, end_cell, move_cube)."""
    check_sequences((sa, sb, sc), count=3)
    if scheme.is_affine:
        raise ValueError("semiglobal implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    best_score = NEG
    best_cell = (n1, n2, n3)

    for d in range(n1 + n2 + n3 + 1):
        out = planes[d % 4]
        ilo, ihi, jlo, jhi = plane_bounds(d, n1, n2, n3)
        if ilo > ihi or jlo > jhi:
            continue
        out[ilo + 1 : ihi + 2, :] = NEG

        I = np.arange(ilo, ihi + 1)[:, None]
        J = np.arange(jlo, jhi + 1)[None, :]
        K = d - I - J
        valid = (K >= 0) & (K <= n3)
        on_lower_face = (I == 0) | (J == 0) | (K == 0)
        if d == 0:
            out[1, 1] = 0.0
            continue

        Ic = np.clip(I - 1, 0, max(n1 - 1, 0))
        Jc = np.clip(J - 1, 0, max(n2 - 1, 0))
        Kc = np.clip(K - 1, 0, max(n3 - 1, 0))
        shape = K.shape
        g_ab = sab[Ic, Jc] if (n1 and n2) else np.zeros(shape)
        g_ac = sac[Ic, Kc] if (n1 and n3) else np.zeros(shape)
        g_bc = sbc[Jc, Kc] if (n2 and n3) else np.zeros(shape)

        r0, r1 = ilo + 1, ihi + 2
        c0, c1 = jlo + 1, jhi + 2
        P1, P2, P3 = (
            planes[(d - 1) % 4],
            planes[(d - 2) % 4],
            planes[(d - 3) % 4],
        )
        cand = np.empty((8,) + shape)
        cand[0] = np.where(on_lower_face, 0.0, NEG)  # free start
        cand[1] = P1[r0 - 1 : r1 - 1, c0:c1] + g2
        cand[2] = P1[r0:r1, c0 - 1 : c1 - 1] + g2
        cand[3] = P2[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1] + g_ab + g2
        cand[4] = P1[r0:r1, c0:c1] + g2
        cand[5] = P2[r0 - 1 : r1 - 1, c0:c1] + g_ac + g2
        cand[6] = P2[r0:r1, c0 - 1 : c1 - 1] + g_bc + g2
        cand[7] = P3[r0 - 1 : r1 - 1, c0 - 1 : c1 - 1] + g_ab + g_ac + g_bc

        best = cand.max(axis=0)
        np.copyto(best, NEG, where=~valid)
        out[r0:r1, c0:c1] = best

        if move_cube is not None:
            moves = cand.argmax(axis=0).astype(np.int8)
            ii, jj = np.nonzero(valid)
            move_cube[ilo + ii, jlo + jj, K[ii, jj]] = moves[ii, jj]

        # Track the best upper-face cell.
        on_upper = valid & ((I == n1) | (J == n2) | (K == n3))
        if on_upper.any():
            masked = np.where(on_upper, best, NEG)
            flat = int(masked.argmax())
            val = float(masked.flat[flat])
            if val > best_score:
                ri, rj = np.unravel_index(flat, masked.shape)
                best_score = val
                best_cell = (ilo + int(ri), jlo + int(rj), int(K[ri, rj]))

    if n1 == 0 or n2 == 0 or n3 == 0:
        # Origin lies on a face; a zero-column overlap is always feasible.
        best_score = max(best_score, 0.0)
        if best_score == 0.0:
            best_cell = (0, 0, 0)
    return best_score, best_cell, move_cube


def align3_semiglobal(
    sa: str, sb: str, sc: str, scheme: ScoringScheme
) -> Alignment3:
    """Best overlap alignment, padded back to full length with end gaps.

    The returned rows cover the *entire* input sequences; ``meta["core"]``
    gives the half-open column range that was actually scored (the overlap
    region), and ``meta["score"]`` excludes the free end gaps.
    """
    score, end, move_cube = semiglobal_sweep(sa, sb, sc, scheme)
    assert move_cube is not None
    i, j, k = end
    moves: list[int] = []
    while True:
        m = int(move_cube[i, j, k])
        if m == 0:
            break
        moves.append(m)
        di, dj, dk = move_delta(m)
        i, j, k = i - di, j - dj, k - dk
    moves.reverse()
    start = (i, j, k)

    core_cols = moves_to_columns(
        moves,
        sa[start[0] : end[0]],
        sb[start[1] : end[1]],
        sc[start[2] : end[2]],
    )
    head = _pad_columns(sa[: start[0]], sb[: start[1]], sc[: start[2]])
    tail = _pad_columns(sa[end[0] :], sb[end[1] :], sc[end[2] :])
    cols = head + core_cols + tail
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    meta: dict[str, Any] = {
        "engine": "semiglobal",
        "core": (len(head), len(head) + len(core_cols)),
        "start": start,
        "end": end,
    }
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]


def _pad_columns(
    pa: str, pb: str, pc: str
) -> list[tuple[str, str, str]]:
    """Stack leftover fragments into end-gap columns (one sequence per
    column, staircase layout — the conventional rendering of free ends)."""
    cols: list[tuple[str, str, str]] = []
    for ch in pa:
        cols.append((ch, GAP_CHAR, GAP_CHAR))
    for ch in pb:
        cols.append((GAP_CHAR, ch, GAP_CHAR))
    for ch in pc:
        cols.append((GAP_CHAR, GAP_CHAR, ch))
    return cols
