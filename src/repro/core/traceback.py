"""Traceback shared by every engine that records a move cube.

A move cube ``M`` holds, for each cell, the move (1..7) by which the optimal
path arrives there, or 0 at the origin. Traceback simply walks from the
terminal corner to the origin, reversing each move's (di, dj, dk).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import move_delta


def traceback_moves(M: np.ndarray, start: tuple[int, int, int] | None = None) -> list[int]:
    """Walk ``M`` from ``start`` (default: the terminal corner) back to the
    origin and return the move sequence in forward order.

    Raises ``RuntimeError`` when the chain is broken (a zero move before the
    origin, or a cycle longer than the cube's diameter), which would indicate
    a bug in the engine that produced ``M``.
    """
    n1, n2, n3 = (d - 1 for d in M.shape)
    i, j, k = start if start is not None else (n1, n2, n3)
    if not (0 <= i <= n1 and 0 <= j <= n2 and 0 <= k <= n3):
        raise ValueError(f"start {(i, j, k)} outside cube {M.shape}")
    moves: list[int] = []
    limit = i + j + k  # each move decreases i+j+k by at least 1
    while (i, j, k) != (0, 0, 0):
        m = int(M[i, j, k])
        if not 1 <= m <= 7:
            raise RuntimeError(
                f"broken traceback chain at ({i},{j},{k}): move {m}"
            )
        moves.append(m)
        di, dj, dk = move_delta(m)
        i, j, k = i - di, j - dj, k - dk
        if i < 0 or j < 0 or k < 0:
            raise RuntimeError("traceback stepped outside the cube")
        if len(moves) > limit:
            raise RuntimeError("traceback did not terminate (cycle?)")
    moves.reverse()
    return moves


def path_cells(moves: list[int]) -> list[tuple[int, int, int]]:
    """The cells visited by a move sequence, starting at the origin.

    Includes both endpoints; useful for verifying that pruning masks retain
    the optimal path.
    """
    i = j = k = 0
    cells = [(0, 0, 0)]
    for m in moves:
        di, dj, dk = move_delta(m)
        i, j, k = i + di, j + dj, k + dk
        cells.append((i, j, k))
    return cells
