"""Engine-facing instrumentation hooks.

The engines call these thin helpers instead of talking to the tracer and
the registry separately, which keeps record/metric names consistent across
``dp3d``, ``wavefront``, ``shared``, ``threads``, the pool executor and
the cluster simulator (and therefore keeps ``repro report`` engine-
agnostic).

Usage pattern inside an engine::

    observing = hooks.active()          # one flag read per sweep
    if observing:
        plane_cells, plane_durs = [], []
    for d in planes:
        t0 = time.perf_counter() if observing else 0.0
        n = compute_plane_rows(...)
        if observing:
            plane_cells.append(n)
            plane_durs.append(time.perf_counter() - t0)
    if observing:
        hooks.record_planes("wavefront", plane_cells, plane_durs)

When both tracing and metrics are off, :func:`active` is False and the hot
loop pays only the boolean check.
"""

from __future__ import annotations

from repro.obs import metrics, trace


def active() -> bool:
    """True when either tracing or metrics collection is enabled."""
    return trace.enabled or metrics.enabled


def record_planes(
    engine: str, cells: list[int], durs: list[float]
) -> None:
    """Per-plane cell counts and durations for one sweep, batched into a
    single trace record plus plane-width histogram samples. Batching keeps
    the engines' in-loop cost to two list appends per plane."""
    if trace.enabled:
        trace.planes(engine, cells, durs)
    if metrics.enabled:
        hist = metrics.registry().histogram("plane_cells")
        for c in cells:
            hist.observe(c)


def record_sweep(
    engine: str,
    *,
    cells: int,
    seconds: float,
    peak_plane_bytes: int = 0,
    move_cube_bytes: int = 0,
) -> None:
    """One completed sweep: throughput and peak buffer accounting."""
    if trace.enabled:
        trace.sweep(
            engine,
            cells,
            seconds,
            peak_plane_bytes=peak_plane_bytes,
            move_cube_bytes=move_cube_bytes,
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("cells_computed").inc(cells)
        reg.counter("sweeps").inc()
        if seconds > 0:
            reg.gauge("cells_per_s").set(cells / seconds)
        reg.gauge("peak_plane_bytes").max_update(peak_plane_bytes)
        reg.gauge("move_cube_bytes").max_update(move_cube_bytes)


def record_worker(
    engine: str,
    worker_id: int,
    busy_s: float,
    wait_s: float,
    cells: int,
    planes: int,
) -> None:
    """One worker's busy-vs-barrier-wait summary for a sweep."""
    if trace.enabled:
        trace.worker(engine, worker_id, busy_s, wait_s, cells, planes)
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("worker_busy_s").inc(busy_s)
        reg.counter("worker_wait_s").inc(wait_s)
        total = busy_s + wait_s
        if total > 0:
            reg.histogram(
                "worker_busy_ratio", metrics.RATIO_BUCKETS
            ).observe(busy_s / total)


def record_failure(
    engine: str, worker: int, plane: int | None, reason: str
) -> None:
    """One detected worker/rank failure (before any recovery attempt)."""
    if trace.enabled:
        trace.event(
            "worker_failure",
            engine=engine,
            worker=worker,
            plane=plane,
            reason=reason,
        )
    if metrics.enabled:
        metrics.registry().counter("worker_failures").inc()


def record_recovery(engine: str, worker: int, plane: int | None) -> None:
    """A worker respawn plus (when mid-sweep) a plane replay."""
    if trace.enabled:
        trace.event(
            "worker_respawn", engine=engine, worker=worker, plane=plane
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("worker_respawns").inc()
        if plane is not None:
            reg.counter("planes_replayed").inc()


def record_degrade(
    requested: str, method: str, estimate: int, budget: int
) -> None:
    """A run transparently moved to a lower-memory engine."""
    if trace.enabled:
        trace.event(
            "degraded_run",
            requested=requested,
            method=method,
            estimate_bytes=estimate,
            budget_bytes=budget,
        )
    if metrics.enabled:
        metrics.registry().counter("degraded_runs").inc()


def record_pruning(
    engine: str,
    *,
    kept_fraction: float,
    lower_bound: float,
    upper_bound: float,
) -> None:
    """One Carrillo–Lipman-pruned run: how much of the cube survived and
    how tight the heuristic lower bound was (``upper_bound`` is the bound
    at the origin, an upper envelope of the optimum — the gap to
    ``lower_bound`` is what pruning has to work with)."""
    if trace.enabled:
        trace.event(
            "pruned_run",
            engine=engine,
            kept_fraction=kept_fraction,
            lower_bound=lower_bound,
            upper_bound=upper_bound,
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("pruned_runs").inc()
        reg.histogram(
            "pruning_kept_fraction", metrics.RATIO_BUCKETS
        ).observe(kept_fraction)
        gap = upper_bound - lower_bound
        if gap >= 0:
            reg.gauge("pruning_bound_gap").set(gap)


def record_anchor(
    mode: str,
    *,
    anchors: int,
    coverage: float,
    segments: int,
    engines: dict[str, int],
) -> None:
    """One chain-decomposed run (``constrained`` or ``anchored``): how
    much of the alignment the chain pinned and which engines the
    sub-cubes landed on (``engines`` is the per-run histogram from
    ``meta["anchor"]["engines"]``; an anchored run that fell back counts
    its single full-cube engine here too)."""
    if trace.enabled:
        trace.event(
            "anchored_run",
            mode=mode,
            anchors=anchors,
            coverage=coverage,
            segments=segments,
            engines=engines,
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("anchored_runs").inc()
        reg.histogram("anchor_count").observe(anchors)
        reg.gauge("anchor_chain_coverage").set(coverage)
        for engine, n in engines.items():
            reg.counter(f"anchor_subcube_{engine}").inc(n)


def record_cache(event: str) -> None:
    """One cache-tier event: ``memory_hit``/``disk_hit``/``miss``/
    ``eviction``. Counter-only — cache lookups are far too frequent for a
    trace record each."""
    if metrics.enabled:
        name = "cache_misses" if event == "miss" else f"cache_{event}s"
        metrics.registry().counter(name).inc()


def record_request(
    *, seconds: float, cache_hit: bool, deduped: bool
) -> None:
    """One batch request served: latency plus how it was satisfied."""
    if metrics.enabled:
        reg = metrics.registry()
        reg.histogram(
            "request_latency_s", metrics.LATENCY_BUCKETS
        ).observe(seconds)
        reg.counter("batch_requests").inc()
        if cache_hit:
            reg.counter("batch_cache_hits").inc()
        if deduped:
            reg.counter("batch_deduped").inc()


def record_batch(
    *,
    requests: int,
    cache_hits: int,
    deduped: int,
    computed: int,
    seconds: float,
    pool_jobs: int = 0,
    pool_savings_s: float = 0.0,
) -> None:
    """One completed batch: dedup ratio and pool-reuse accounting."""
    if trace.enabled:
        trace.event(
            "batch",
            requests=requests,
            cache_hits=cache_hits,
            deduped=deduped,
            computed=computed,
            seconds=seconds,
            pool_jobs=pool_jobs,
            pool_savings_s=pool_savings_s,
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("batches").inc()
        reg.counter("batch_computed").inc(computed)
        if requests > 0:
            reg.gauge("batch_dedup_ratio").set(
                (requests - computed) / requests
            )
        if pool_jobs:
            reg.counter("pool_jobs").inc(pool_jobs)
            reg.counter("pool_spawn_savings_s").inc(pool_savings_s)


def record_serve_request(*, route: str, status: int, seconds: float) -> None:
    """One HTTP exchange served: route-agnostic latency plus status
    classes the dashboards care about (shed, deadline-miss, failure)."""
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("serve_requests").inc()
        reg.counter(f"serve_status_{status}").inc()
        reg.histogram(
            "serve_latency_s", metrics.LATENCY_BUCKETS
        ).observe(seconds)
        if status == 429:
            reg.counter("serve_shed_responses").inc()
        elif status == 504:
            reg.counter("serve_deadline_misses").inc()
        elif status >= 500:
            reg.counter("serve_failures").inc()


def record_serve_queue(*, depth: int, inflight_cells: int) -> None:
    """Admission-controller state after a transition (gauges, plus peak
    high-watermarks so a scrape can't miss a burst)."""
    if metrics.enabled:
        reg = metrics.registry()
        reg.gauge("serve_queue_depth").set(depth)
        reg.gauge("serve_queue_depth_peak").max_update(depth)
        reg.gauge("serve_inflight_cells").set(inflight_cells)
        reg.gauge("serve_inflight_cells_peak").max_update(inflight_cells)


def record_serve_shed(reason: str) -> None:
    """One admission rejection, by resource (``queue_full``/``cells_full``)."""
    if trace.enabled:
        trace.event("serve_shed", reason=reason)
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("serve_shed").inc()
        reg.counter(f"serve_shed_{reason}").inc()


def record_serve_flush(*, reason: str, jobs: int, requests: int) -> None:
    """One micro-batch window closing (``size``/``age``/``drain``)."""
    if trace.enabled:
        trace.event(
            "serve_flush", reason=reason, jobs=jobs, requests=requests
        )
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("serve_flushes").inc()
        reg.counter(f"serve_flush_{reason}").inc()
        reg.histogram("serve_batch_requests").observe(requests)


def record_serve_batch_failure(kind: str) -> None:
    """A whole compute batch failed (e.g. WorkerFailure past recovery)."""
    if trace.enabled:
        trace.event("serve_batch_failure", kind=kind)
    if metrics.enabled:
        metrics.registry().counter("serve_batch_failures").inc()


def record_comm(
    rank: int,
    *,
    checksum_bad: int = 0,
    resends: int = 0,
    retries: int = 0,
) -> None:
    """Per-rank message-passing failure accounting (mpirun)."""
    if trace.enabled and (checksum_bad or resends or retries):
        trace.event(
            "comm_faults",
            rank=rank,
            checksum_bad=checksum_bad,
            resends=resends,
            retries=retries,
        )
    if metrics.enabled:
        reg = metrics.registry()
        if checksum_bad:
            reg.counter("comm_checksum_bad").inc(checksum_bad)
            reg.counter(f"comm_checksum_bad_rank{rank}").inc(checksum_bad)
        if resends:
            reg.counter("comm_resends").inc(resends)
        if retries:
            reg.counter("comm_retries").inc(retries)


def record_sim(
    *,
    procs: int,
    blocks: int,
    messages: int,
    comm_bytes: int,
    makespan: float,
    speedup: float,
    busy: list[float],
) -> None:
    """One simulated cluster execution, including per-proc busy/wait
    records so ``repro report`` renders simulated utilisation the same way
    it renders measured workers."""
    if trace.enabled:
        trace.sim(procs, blocks, messages, comm_bytes, makespan, speedup)
        for p, busy_s in enumerate(busy):
            trace.worker("sim", p, busy_s, max(0.0, makespan - busy_s), 0, 0)
    if metrics.enabled:
        reg = metrics.registry()
        reg.counter("sim_runs").inc()
        reg.counter("sim_messages").inc(messages)
        reg.counter("sim_comm_bytes").inc(comm_bytes)
        reg.gauge("sim_makespan_s").set(makespan)
        reg.gauge("sim_speedup").set(speedup)
