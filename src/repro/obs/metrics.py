"""In-process metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain dict-of-objects — no locks, no
background threads — because every engine updates metrics at plane or
sweep granularity, never per cell. Like :mod:`repro.obs.trace`, the
module-level :data:`enabled` flag is the single hot-path guard: engines
read it once per sweep and skip all metric updates when it is False.

Cross-process note: forked workers mutate their own copy of the registry,
which dies with them. Per-worker numbers travel through the trace sink
(:func:`repro.obs.trace.worker`) instead; the registry view is the
dispatching process's view, which is what ``--metrics`` prints.
"""

from __future__ import annotations

import contextlib
import math
from bisect import bisect_left
from typing import Any, Iterator, Sequence

#: Module-level fast guard, mirrors ``repro.obs.trace.enabled``.
enabled = False

_registry: "MetricsRegistry | None" = None

#: Default histogram bounds: decade buckets for cell counts.
DEFAULT_BUCKETS = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6)

#: Bounds for ratio-valued histograms (busy fraction and the like).
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)

#: Bounds for latency histograms in seconds (cache hits sit in the
#: sub-millisecond buckets, cold O(n^3) computes in the upper ones).
LATENCY_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-written value, with an explicit high-watermark mode."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def max_update(self, v: float) -> None:
        """Keep the maximum of everything observed (peak-bytes style)."""
        v = float(v)
        if v > self.value:
            self.value = v


class Histogram:
    """Fixed-bucket histogram.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything above the last edge.
    A value ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge``.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if list(edges) != sorted(edges):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        # First edge >= v, i.e. upper edges are inclusive; values past the
        # last edge land in the overflow bucket at index len(bounds).
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(bounds)
        return h

    def snapshot(self) -> dict[str, Any]:
        """Full structured dump (JSON-able)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def summary(self) -> dict[str, float]:
        """Flat scalar view: counters and gauges verbatim, histograms as
        ``<name>_count`` / ``<name>_mean`` / ``<name>_max``. This is the
        dict attached to every ``ExperimentResult``."""
        out: dict[str, float] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, g in sorted(self._gauges.items()):
            out[name] = g.value
        for name, h in sorted(self._histograms.items()):
            out[f"{name}_count"] = float(h.count)
            out[f"{name}_mean"] = h.mean
            out[f"{name}_max"] = h.max if h.count else 0.0
        return out


def registry() -> MetricsRegistry:
    """The current registry (created lazily)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def enable(reg: MetricsRegistry | None = None) -> MetricsRegistry:
    """Start collecting into ``reg`` (a fresh registry by default)."""
    global enabled, _registry
    _registry = reg if reg is not None else MetricsRegistry()
    enabled = True
    return _registry


def disable() -> None:
    global enabled
    enabled = False


@contextlib.contextmanager
def collect(
    reg: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Collect metrics for the duration of a ``with`` block, restoring the
    previous enabled/registry state on exit (safe to nest)."""
    global enabled, _registry
    prev_enabled, prev_registry = enabled, _registry
    active = enable(reg)
    try:
        yield active
    finally:
        enabled, _registry = prev_enabled, prev_registry
