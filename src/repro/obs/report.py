"""Render a captured JSONL trace into human-readable tables.

This is the backend of ``repro report``. It aggregates the typed records
written by :mod:`repro.obs.trace` into per-family views:

* **phases** — span durations grouped by name (count/total/mean/share);
* **sweeps** — per-sweep throughput and peak buffer bytes;
* **planes** — per-plane timing, binned over the wavefront index ``d`` so
  a 180-plane sweep renders as a dozen rows (``--planes 0`` for every
  plane);
* **workers** — per ``(engine, pid, worker)`` busy vs barrier-wait time
  and the busy ratio, the load-imbalance signal the parallel engines are
  tuned against;
* **batches** — one row per batch event: dedup ratio and pool-reuse
  accounting from :mod:`repro.batch` (plus **simulated executions** for
  cluster-simulator traces).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.obs.trace import read_trace
from repro.util.tables import format_table


def _by_type(records: Iterable[dict]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = defaultdict(list)
    for rec in records:
        grouped[rec.get("type", "?")].append(rec)
    return grouped


def _phase_table(spans: list[dict]) -> str:
    agg: dict[str, list[float]] = defaultdict(list)
    for s in spans:
        agg[str(s.get("name", "?"))].append(float(s.get("dur", 0.0)))
    grand = sum(sum(v) for v in agg.values()) or 1.0
    rows = [
        (
            name,
            len(durs),
            sum(durs),
            sum(durs) / len(durs),
            max(durs),
            100.0 * sum(durs) / grand,
        )
        for name, durs in sorted(
            agg.items(), key=lambda kv: -sum(kv[1])
        )
    ]
    return format_table(
        "phases (span durations by name)",
        ["phase", "count", "total_s", "mean_s", "max_s", "share_%"],
        rows,
    )


def _sweep_table(sweeps: list[dict]) -> str:
    rows = [
        (
            s.get("engine", "?"),
            s.get("pid", 0),
            s.get("cells", 0),
            s.get("seconds", 0.0),
            s.get("cells_per_s", 0.0) / 1e6,
            s.get("peak_plane_bytes", 0),
            s.get("move_cube_bytes", 0),
        )
        for s in sweeps
    ]
    return format_table(
        "sweeps (throughput and peak buffers)",
        ["engine", "pid", "cells", "seconds", "Mcells/s",
         "peak_plane_B", "move_cube_B"],
        rows,
    )


def _plane_table(planes: list[dict], bins: int) -> str:
    per_engine: dict[str, dict[int, list[float]]] = defaultdict(
        lambda: defaultdict(lambda: [0.0, 0.0])
    )
    # Aggregate repeated sweeps (and multiple workers) of the same engine
    # by plane index first. Each record batches one sweep's per-plane cell
    # counts and durations as parallel lists indexed by d.
    for p in planes:
        by_d = per_engine[str(p.get("engine", "?"))]
        for d, (c, dur) in enumerate(
            zip(p.get("cells", []), p.get("durs", []))
        ):
            acc = by_d[d]
            acc[0] += float(c)
            acc[1] += float(dur)
    rows: list[tuple] = []
    for engine, by_d in sorted(per_engine.items()):
        ds = sorted(by_d)
        dmax = ds[-1]
        width = 1 if bins <= 0 else max(1, (dmax + bins) // bins)
        binned: dict[int, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
        for d in ds:
            b = d // width
            binned[b][0] += 1
            binned[b][1] += by_d[d][0]
            binned[b][2] += by_d[d][1]
        for b in sorted(binned):
            n_planes, cells, dur = binned[b]
            lo, hi = b * width, min(dmax, (b + 1) * width - 1)
            label = str(lo) if lo == hi else f"{lo}-{hi}"
            rows.append(
                (
                    engine,
                    label,
                    int(n_planes),
                    int(cells),
                    dur,
                    (cells / dur / 1e6) if dur > 0 else float("nan"),
                )
            )
    return format_table(
        "planes (time per wavefront index d)",
        ["engine", "d", "planes", "cells", "time_s", "Mcells/s"],
        rows,
    )


def _worker_table(workers: list[dict]) -> str:
    rows = []
    for w in sorted(
        workers,
        key=lambda w: (str(w.get("engine")), w.get("worker", 0), w.get("pid", 0)),
    ):
        busy = float(w.get("busy_s", 0.0))
        wait = float(w.get("wait_s", 0.0))
        total = busy + wait
        rows.append(
            (
                w.get("engine", "?"),
                w.get("pid", 0),
                w.get("worker", 0),
                busy,
                wait,
                busy / total if total > 0 else float("nan"),
                w.get("cells", 0),
            )
        )
    return format_table(
        "workers (busy vs barrier wait)",
        ["engine", "pid", "worker", "busy_s", "wait_s", "busy_ratio", "cells"],
        rows,
    )


def _batch_table(batches: list[dict]) -> str:
    rows = [
        (
            b.get("requests", 0),
            b.get("cache_hits", 0),
            b.get("deduped", 0),
            b.get("computed", 0),
            (b.get("requests", 0) - b.get("computed", 0))
            / b.get("requests", 1)
            if b.get("requests")
            else 0.0,
            b.get("seconds", 0.0),
            b.get("pool_jobs", 0),
            b.get("pool_savings_s", 0.0),
        )
        for b in batches
    ]
    return format_table(
        "batches (request dedup and pool reuse)",
        ["requests", "cache_hits", "deduped", "computed", "dedup_ratio",
         "wall_s", "pool_jobs", "pool_savings_s"],
        rows,
    )


def _sim_table(sims: list[dict]) -> str:
    rows = [
        (
            s.get("procs", 0),
            s.get("blocks", 0),
            s.get("messages", 0),
            s.get("comm_bytes", 0) / 1e6,
            s.get("makespan", 0.0),
            s.get("speedup", 0.0),
        )
        for s in sims
    ]
    return format_table(
        "simulated executions",
        ["procs", "blocks", "messages", "comm_MB", "makespan_s", "speedup"],
        rows,
    )


def render_report(path: Any, plane_bins: int = 12) -> str:
    """Aggregate the trace at ``path`` and return the rendered tables."""
    records = read_trace(path)
    if not records:
        return f"trace {path}: no records"
    grouped = _by_type(records)
    sections: list[str] = [
        f"trace {path}: {len(records)} records, "
        f"{len({r.get('pid') for r in records})} process(es)"
    ]
    if grouped.get("span"):
        sections.append(_phase_table(grouped["span"]))
    if grouped.get("sweep"):
        sections.append(_sweep_table(grouped["sweep"]))
    if grouped.get("planes"):
        sections.append(_plane_table(grouped["planes"], plane_bins))
    if grouped.get("worker"):
        sections.append(_worker_table(grouped["worker"]))
    if grouped.get("sim"):
        sections.append(_sim_table(grouped["sim"]))
    batch_events = [
        e for e in grouped.get("event", []) if e.get("name") == "batch"
    ]
    if batch_events:
        sections.append(_batch_table(batch_events))
    return "\n\n".join(sections)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as tables (for
    ``--metrics`` output)."""
    sections: list[str] = []
    scalar_rows = [
        (name, value) for name, value in snapshot.get("counters", {}).items()
    ] + [(name, value) for name, value in snapshot.get("gauges", {}).items()]
    if scalar_rows:
        sections.append(
            format_table("metrics", ["name", "value"], scalar_rows)
        )
    hist_rows = []
    for name, h in snapshot.get("histograms", {}).items():
        buckets = " ".join(
            f"<={b:g}:{c}" for b, c in zip(h["bounds"], h["counts"])
        )
        if h["counts"][-1]:
            buckets += f" >{h['bounds'][-1]:g}:{h['counts'][-1]}"
        hist_rows.append((name, h["count"], h["mean"], h["max"], buckets))
    if hist_rows:
        sections.append(
            format_table(
                "histograms",
                ["name", "count", "mean", "max", "buckets"],
                hist_rows,
            )
        )
    return "\n\n".join(sections) if sections else "no metrics collected"
