"""Observability: span tracing, metrics, and trace reporting.

Zero-dependency instrumentation for the alignment engines. The subsystem
has three layers:

``repro.obs.trace``
    Nestable context-manager spans plus typed fast-path records (plane,
    worker, sweep), written as JSONL to a process-safe append-only sink so
    forked workers can emit into the same file; records are merged by
    ``(pid, sid)``.
``repro.obs.metrics``
    In-process counters, gauges and fixed-bucket histograms collected in a
    registry (cells computed, cells/sec, plane-width distribution, peak
    buffer bytes, worker busy/wait).
``repro.obs.report``
    Renders a captured trace file into per-phase / per-plane / per-worker
    tables (surfaced as ``repro report``).

Both trace and metrics default to *off*; every engine guards its
instrumentation behind a module-level enabled flag hoisted out of the hot
loops, so the untraced path pays nothing beyond one boolean check per
sweep (and one per plane for the wavefront family).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect,
)
from repro.obs.trace import TraceRecorder, read_trace, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collect",
    "TraceRecorder",
    "read_trace",
    "span",
]
