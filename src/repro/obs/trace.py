"""Span tracer with a process-safe JSONL sink.

Design constraints (see ``docs/observability.md``):

* **Zero cost when off.** The module-level :data:`enabled` flag defaults to
  False; engines hoist one read of it out of their hot loops and skip all
  instrumentation when it is False. :func:`span` returns a shared no-op
  context manager in that state.
* **Multiprocess-safe.** The sink is an ``O_APPEND`` file descriptor that
  forked workers inherit; every flush writes whole lines, so records from
  different processes interleave at line granularity and a record is
  uniquely identified by ``(pid, sid)``. Parents must call :func:`flush`
  before forking so buffered lines are not duplicated into children.
* **Comparable clocks.** Timestamps are ``time.perf_counter()`` readings;
  on Linux that is ``CLOCK_MONOTONIC``, which forked children share, so
  worker timestamps line up with the parent's.

Record types emitted (one JSON object per line):

``span``    nested timed region: name, pid, sid, parent, t0, t1, dur
``event``   instant marker: name, pid, t, plus free-form attributes
``planes``  per-plane cells/durations of one sweep, batched as two lists
            indexed by the wavefront index ``d``
``worker``  one worker's sweep summary: engine, pid, worker, busy_s,
            wait_s, cells, planes
``sweep``   one whole sweep: engine, pid, cells, seconds, cells_per_s,
            peak_plane_bytes, move_cube_bytes
``sim``     one simulated execution: procs, blocks, messages, comm bytes,
            makespan, speedup
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

#: Module-level fast guard. Engines read this once per sweep; when False the
#: instrumented path is never entered.
enabled = False

_recorder: "TraceRecorder | None" = None

#: Buffered lines before an automatic flush. Buffering keeps the per-plane
#: emit cost to a string append; the overhead guard in
#: ``tools/check_overhead.py`` depends on this.
_FLUSH_EVERY = 256


class TraceRecorder:
    """Append-only JSONL sink shared by all processes of a run."""

    def __init__(self, path: Any):
        self.path = os.fspath(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._buf: list[str] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        """Serialise ``record`` and queue it for the sink."""
        self.emit_line(json.dumps(record, separators=(",", ":")))

    def emit_line(self, line: str) -> None:
        """Queue one pre-serialised JSON line (fast path for hot records)."""
        with self._lock:
            self._buf.append(line)
            if len(self._buf) >= _FLUSH_EVERY:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buf and self._fd >= 0:
            os.write(self._fd, ("\n".join(self._buf) + "\n").encode())
            self._buf.clear()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def install(recorder: TraceRecorder) -> None:
    """Route all trace records to ``recorder`` and enable tracing."""
    global enabled, _recorder
    _recorder = recorder
    enabled = True


def uninstall() -> None:
    """Disable tracing; the recorder is flushed but left open for the caller."""
    global enabled, _recorder
    if _recorder is not None:
        _recorder.flush()
    _recorder = None
    enabled = False


def flush() -> None:
    """Flush buffered records. Call before forking workers."""
    if _recorder is not None:
        _recorder.flush()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

_tls = threading.local()
_next_sid = 0


def _stack() -> list[int]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "sid", "parent", "t0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        global _next_sid
        _next_sid += 1
        self.sid = _next_sid
        stack = _stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.sid)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        t1 = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] == self.sid:
            stack.pop()
        rec = _recorder
        if rec is not None:
            record = {
                "type": "span",
                "name": self.name,
                "pid": os.getpid(),
                "sid": self.sid,
                "parent": self.parent,
                "t0": self.t0,
                "t1": t1,
                "dur": t1 - self.t0,
            }
            record.update(self.attrs)
            rec.emit(record)
        return False


def span(name: str, **attrs: Any):
    """Context manager timing a named region; no-op while disabled.

    Nested spans record their parent's ``sid``; each process numbers its
    spans independently, so ``(pid, sid)`` is the merge key.
    """
    if not enabled:
        return _NULL_SPAN
    return _Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit an instant event record."""
    rec = _recorder
    if rec is None:
        return
    record: dict[str, Any] = {
        "type": "event",
        "name": name,
        "pid": os.getpid(),
        "t": time.perf_counter(),
    }
    record.update(attrs)
    rec.emit(record)


# ---------------------------------------------------------------------------
# Typed fast-path records (hand-formatted: these fire once per plane/worker)
# ---------------------------------------------------------------------------


def planes(engine: str, cells: list[int], durs: list[float]) -> None:
    """Record the per-plane cell counts and durations of one sweep.

    One batched record per sweep (index = wavefront index ``d``) keeps the
    in-loop tracing cost to a pair of list appends; emitting a JSON line
    per plane measurably slowed small sweeps.
    """
    rec = _recorder
    if rec is None:
        return
    rec.emit(
        {
            "type": "planes",
            "engine": engine,
            "pid": os.getpid(),
            "cells": cells,
            "durs": [round(x, 9) for x in durs],
        }
    )


def worker(
    engine: str,
    worker_id: int,
    busy_s: float,
    wait_s: float,
    cells: int,
    planes: int,
) -> None:
    """Record one worker's busy/barrier-wait totals for a sweep."""
    rec = _recorder
    if rec is None:
        return
    rec.emit_line(
        f'{{"type":"worker","engine":"{engine}","pid":{os.getpid()},'
        f'"worker":{worker_id},"busy_s":{busy_s:.9f},"wait_s":{wait_s:.9f},'
        f'"cells":{cells},"planes":{planes}}}'
    )


def sweep(
    engine: str,
    cells: int,
    seconds: float,
    peak_plane_bytes: int = 0,
    move_cube_bytes: int = 0,
) -> None:
    """Record a completed sweep with throughput and buffer sizes."""
    rec = _recorder
    if rec is None:
        return
    cps = cells / seconds if seconds > 0 else 0.0
    rec.emit(
        {
            "type": "sweep",
            "engine": engine,
            "pid": os.getpid(),
            "cells": cells,
            "seconds": seconds,
            "cells_per_s": cps,
            "peak_plane_bytes": peak_plane_bytes,
            "move_cube_bytes": move_cube_bytes,
        }
    )


def sim(
    procs: int,
    blocks: int,
    messages: int,
    comm_bytes: int,
    makespan: float,
    speedup: float,
) -> None:
    """Record one simulated cluster execution."""
    rec = _recorder
    if rec is None:
        return
    rec.emit(
        {
            "type": "sim",
            "pid": os.getpid(),
            "procs": procs,
            "blocks": blocks,
            "messages": messages,
            "comm_bytes": comm_bytes,
            "makespan": makespan,
            "speedup": speedup,
        }
    )


# ---------------------------------------------------------------------------
# Reading traces back
# ---------------------------------------------------------------------------


def read_trace(path: Any) -> list[dict]:
    """Parse a JSONL trace file, skipping blank or truncated lines."""
    records: list[dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A worker killed mid-write can leave one truncated line.
                continue
    return records
