"""repro — Efficient Parallel Algorithms for Optimal Three-Sequence Alignment.

A production-quality reproduction of the ICPP 2007 paper *Efficient
Parallel Algorithm for Optimal Three-Sequences Alignment* (Lin, Huang,
Chung, Tang): exact sum-of-pairs alignment of three sequences by 3-D
dynamic programming, with vectorised anti-diagonal wavefront engines,
shared-memory parallel execution, linear-space traceback, Carrillo–Lipman
pruning, affine gaps, heuristic baselines, and a simulated
distributed-memory cluster for paper-scale scaling studies.

Quickstart
----------
>>> from repro import align3
>>> aln = align3("GATTACA", "GATCA", "GTTACA")
>>> print(aln.pretty())          # doctest: +SKIP

See ``README.md`` for the architecture tour and ``DESIGN.md`` for the
system inventory.
"""

from repro.core import (
    Alignment3,
    ScoringScheme,
    align3,
    align3_score,
    AVAILABLE_METHODS,
    blosum62,
    pam250,
    dna_simple,
    unit_matrix,
    edit_distance_scheme,
)
from repro.core.scoring import default_scheme_for
from repro.seqio import (
    Alphabet,
    DNA,
    RNA,
    PROTEIN,
    read_fasta,
    write_fasta,
    random_sequence,
    mutated_family,
    MutationModel,
)

__version__ = "1.0.0"

__all__ = [
    "Alignment3",
    "ScoringScheme",
    "align3",
    "align3_score",
    "AVAILABLE_METHODS",
    "blosum62",
    "pam250",
    "dna_simple",
    "unit_matrix",
    "edit_distance_scheme",
    "default_scheme_for",
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "read_fasta",
    "write_fasta",
    "random_sequence",
    "mutated_family",
    "MutationModel",
    "__version__",
]
