"""Argument-validation helpers.

Every public entry point validates its inputs eagerly so that misuse fails
with a clear message at the API boundary instead of deep inside a vectorised
kernel, where NumPy's broadcasting errors are hard to map back to the
caller's mistake.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )


def check_sequences(seqs: Sequence[str], count: int | None = None) -> None:
    """Validate a collection of raw sequence strings.

    Ensures each element is a ``str``; empty sequences are *allowed* (the
    alignment algorithms handle them and several tests rely on it), but
    non-string entries and a wrong count are rejected.
    """
    if count is not None and len(seqs) != count:
        raise ValueError(f"expected {count} sequences, got {len(seqs)}")
    for idx, s in enumerate(seqs):
        if not isinstance(s, str):
            raise TypeError(
                f"sequence #{idx} must be str, got {type(s).__name__}"
            )


def ensure_distinct(names: Iterable[str]) -> None:
    """Raise ``ValueError`` when ``names`` contains duplicates."""
    seen: set[str] = set()
    for n in names:
        if n in seen:
            raise ValueError(f"duplicate name: {n!r}")
        seen.add(n)
