"""Cross-cutting utilities: timing, validation, table emission.

These helpers are deliberately dependency-free (NumPy only) so that every
other subpackage may import them without cycles.
"""

from repro.util.timing import (
    RepeatStats,
    Timer,
    format_seconds,
    repeat_min,
    repeat_stats,
)
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_type,
    check_sequences,
)
from repro.util.tables import Table, format_table, format_series

__all__ = [
    "RepeatStats",
    "Timer",
    "repeat_min",
    "repeat_stats",
    "format_seconds",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_type",
    "check_sequences",
    "Table",
    "format_table",
    "format_series",
]
