"""Timing helpers used by the benchmark harness and the examples.

The conventions follow the optimisation workflow recommended for scientific
Python: measure before optimising, prefer the *minimum* of several repeats
(it is the least noisy estimator of the true cost on an otherwise idle
machine), and keep individual measurement runs short. When the spread
itself matters (e.g. judging whether two variants differ by more than the
noise), :func:`repeat_stats` reports min/median/mean/stdev of the same
repeats.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    Calling :meth:`stop` without a prior :meth:`start` (or ``__enter__``)
    raises ``RuntimeError`` — previously it silently measured from the
    epoch of the performance counter and returned a huge bogus elapsed.
    ``__exit__`` shares the same guard, so misuse (e.g. ``stop()`` inside
    the ``with`` block) raises the descriptive error instead of a bare
    ``TypeError`` from ``float - None``.
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed time in seconds."""
        if self._start is None:
            raise RuntimeError(
                "Timer.stop() called without a matching start(); "
                "call start() or use the context-manager form first"
            )
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed


@dataclass(frozen=True)
class RepeatStats:
    """Summary statistics over the timed repeats of one measurement."""

    min: float
    median: float
    mean: float
    stdev: float
    repeats: int


def repeat_stats(
    fn: Callable[[], Any],
    repeats: int = 3,
    warmup: int = 0,
) -> tuple[RepeatStats, Any]:
    """Run ``fn`` ``repeats`` times and return ``(stats, last_result)``.

    ``stats`` carries (min, median, mean, stdev) of the timed runs;
    ``stdev`` is 0.0 for a single repeat. ``warmup`` extra untimed calls
    are made first, which matters for code paths that allocate pools of
    worker processes or fill caches.

    Parameters
    ----------
    fn:
        Zero-argument callable to measure.
    repeats:
        Number of timed invocations.
    warmup:
        Number of untimed invocations run before measuring.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    stats = RepeatStats(
        min=min(times),
        median=statistics.median(times),
        mean=statistics.fmean(times),
        stdev=statistics.stdev(times) if len(times) >= 2 else 0.0,
        repeats=repeats,
    )
    return stats, result


def repeat_min(
    fn: Callable[[], Any],
    repeats: int = 3,
    warmup: int = 0,
) -> tuple[float, Any]:
    """Run ``fn`` ``repeats`` times and return ``(min_seconds, last_result)``.

    Kept as the harness's standard estimator; delegates to
    :func:`repeat_stats` and reports the minimum.
    """
    stats, result = repeat_stats(fn, repeats=repeats, warmup=warmup)
    return stats.min, result


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering of a duration (``1.23 s``, ``45.6 ms`` ...).

    Negative durations (clock skew, subtracted timestamps) format the
    magnitude and prefix the sign, so ``-0.5`` renders as ``-500.00 ms``
    rather than falling through every threshold into the ns branch.
    """
    if seconds != seconds:  # NaN
        return "nan"
    sign = "-" if seconds < 0 else ""
    s = abs(seconds)
    if s >= 1.0:
        return f"{sign}{s:.3f} s"
    if s >= 1e-3:
        return f"{sign}{s * 1e3:.2f} ms"
    if s >= 1e-6:
        return f"{sign}{s * 1e6:.2f} us"
    return f"{sign}{s * 1e9:.1f} ns"
