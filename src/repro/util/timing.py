"""Timing helpers used by the benchmark harness and the examples.

The conventions follow the optimisation workflow recommended for scientific
Python: measure before optimising, prefer the *minimum* of several repeats
(it is the least noisy estimator of the true cost on an otherwise idle
machine), and keep individual measurement runs short.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        """Start (or restart) the stopwatch outside a ``with`` block."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed time in seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


def repeat_min(
    fn: Callable[[], Any],
    repeats: int = 3,
    warmup: int = 0,
) -> tuple[float, Any]:
    """Run ``fn`` ``repeats`` times and return ``(min_seconds, last_result)``.

    ``warmup`` extra untimed calls are made first, which matters for code
    paths that allocate pools of worker processes or fill caches.

    Parameters
    ----------
    fn:
        Zero-argument callable to measure.
    repeats:
        Number of timed invocations; the minimum is reported.
    warmup:
        Number of untimed invocations run before measuring.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    best = math.inf
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering of a duration (``1.23 s``, ``45.6 ms`` ...)."""
    if seconds != seconds:  # NaN
        return "nan"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"
