"""ASCII table and data-series rendering for the benchmark harness.

The experiment runner regenerates the rows of each of the paper's tables and
the series of each figure; these helpers render them uniformly so that
``EXPERIMENTS.md`` can quote harness output verbatim.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """Accumulates rows and renders an aligned ASCII table.

    >>> t = Table("demo", ["n", "time"])
    >>> t.add_row(10, 0.5)
    >>> "demo" in t.render()
    True
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_render_cell(v) for v in values])

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join(self.columns) + "\n")
        for row in self.rows:
            buf.write(",".join(row) + "\n")
        return buf.getvalue()


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> str:
    """Render ``rows`` under ``columns`` as a boxed ASCII table string."""
    str_rows = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out = [f"== {title} ==", sep]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    out.append(f"| {header} |")
    out.append(sep)
    for row in str_rows:
        line = " | ".join(c.rjust(w) for c, w in zip(row, widths))
        out.append(f"| {line} |")
    out.append(sep)
    return "\n".join(out)


def format_series(
    title: str,
    x_name: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
) -> str:
    """Render figure data as one x column plus one column per series.

    This is the canonical "figure as numbers" format: each named series is a
    line in the original plot.
    """
    columns = [x_name, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(vals[i] for vals in series.values())])
    return format_table(title, columns, rows)
