"""Simulated distributed-memory execution of the parallel algorithm.

The paper family evaluates on a PC cluster (MPI over Fast Ethernet, one
rank per node). That hardware is not available here, so this package
*simulates* it: the 3-D DP cube is decomposed into blocks
(:mod:`blockgrid`), blocks inherit the 7-neighbour wavefront dependence,
and an event-driven scheduler (:mod:`simulate`) plays the execution out on
a parameterised machine (:mod:`machine`: processor count, per-cell compute
time, link latency ``alpha`` and inverse bandwidth ``beta``).

The simulation preserves what the paper's scaling figures actually measure
— the schedule structure (pipeline fill/drain of the block wavefront) and
the computation/communication ratio — which is what determines speedup
shape, efficiency rolloff and the block-size sweet spot. Per-cell compute
time can be calibrated against the real vectorised engine on this machine
(:func:`repro.cluster.machine.calibrate_t_cell`).
"""

from repro.cluster.machine import (
    MachineModel,
    ethernet_2007,
    gigabit_2007,
    modern_cluster,
    calibrate_t_cell,
)
from repro.cluster.blockgrid import BlockGrid
from repro.cluster.simulate import simulate_wavefront, SimResult
from repro.cluster.metrics import speedup_series, efficiency_series, comm_volume_series
from repro.cluster.memory import per_rank_memory, max_length_for_budget, MemoryProfile
from repro.cluster.execute import execute_blocked, BlockedResult
from repro.cluster.mpirun import run_distributed, DistributedResult
from repro.cluster.hetero import (
    HeterogeneousMachine,
    simulate_wavefront_hetero,
    uniform_with_stragglers,
    weighted_pencil_owners,
)

__all__ = [
    "execute_blocked",
    "run_distributed",
    "DistributedResult",
    "BlockedResult",
    "per_rank_memory",
    "max_length_for_budget",
    "MemoryProfile",
    "HeterogeneousMachine",
    "simulate_wavefront_hetero",
    "uniform_with_stragglers",
    "weighted_pencil_owners",
    "MachineModel",
    "ethernet_2007",
    "gigabit_2007",
    "modern_cluster",
    "calibrate_t_cell",
    "BlockGrid",
    "simulate_wavefront",
    "SimResult",
    "speedup_series",
    "efficiency_series",
    "comm_volume_series",
]
