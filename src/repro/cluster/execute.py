"""Functional execution of the distributed block algorithm.

:mod:`repro.cluster.simulate` models the *timing* of the block wavefront;
this module executes its *computation*: blocks are processed in wavefront
order, and each block reads only (a) its own cells and (b) the one-cell
ghost layers its seven predecessor blocks would have sent. Every
cross-owner ghost transfer is recorded, so the executor verifies two
things at once:

1. the block decomposition and its ghost-exchange pattern are *sufficient*
   to compute the exact optimum (the score must equal the monolithic
   engines'), and
2. the message/byte accounting used by the timing simulator corresponds to
   real transfers (the counts must match ``simulate_wavefront`` exactly).

The DP state lives in one shared cube for simplicity, but the read
discipline is enforced structurally: a block's fill reads only indices
inside the block or on its one-cell lower boundary — precisely the ghost
payloads ``BlockGrid.dependencies`` accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.blockgrid import BlockGrid
from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.resilience.errors import ProtocolError
from repro.util.validation import check_positive, check_sequences


@dataclass
class BlockedResult:
    """Outcome of a blocked execution."""

    score: float
    messages: int
    comm_bytes: int
    blocks: int
    per_proc_cells: list[int] = field(default_factory=list)


def _fill_block(
    D: np.ndarray,
    lo: tuple[int, int, int],
    hi: tuple[int, int, int],
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
) -> None:
    """Fill cells ``lo..hi`` (inclusive) of the cube in-place.

    Within the block, cells are swept by local anti-diagonals; every read
    is either inside the block or exactly one cell below a face — the
    ghost layer.
    """
    i0, j0, k0 = lo
    i1, j1, k1 = hi
    for d in range(i0 + j0 + k0, i1 + j1 + k1 + 1):
        for i in range(max(i0, d - j1 - k1), min(i1, d) + 1):
            jl = max(j0, d - i - k1)
            jh = min(j1, d - i - k0)
            if jl > jh:
                continue
            for j in range(jl, jh + 1):
                k = d - i - j
                if i == 0 and j == 0 and k == 0:
                    D[0, 0, 0] = 0.0
                    continue
                best = NEG
                if i >= 1:
                    v = D[i - 1, j, k] + g2
                    if v > best:
                        best = v
                if j >= 1:
                    v = D[i, j - 1, k] + g2
                    if v > best:
                        best = v
                if k >= 1:
                    v = D[i, j, k - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1:
                    v = D[i - 1, j - 1, k] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and k >= 1:
                    v = D[i - 1, j, k - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best = v
                if j >= 1 and k >= 1:
                    v = D[i, j - 1, k - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        D[i - 1, j - 1, k - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best = v
                D[i, j, k] = best


def execute_blocked(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    block: int | tuple[int, int, int] = 8,
    procs: int = 4,
    mapping: str = "pencil",
) -> BlockedResult:
    """Run the block-decomposed DP and account for every ghost transfer.

    Returns the exact optimal score plus the communication ledger. Use
    small inputs: the per-block fill is the scalar reference (this is a
    validation tool, not a production engine).
    """
    check_sequences((sa, sb, sc), count=3)
    check_positive("procs", procs)
    if scheme.is_affine:
        raise ValueError("execute_blocked implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    grid = BlockGrid.for_sequences(n1, n2, n3, block)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    D = np.full((n1 + 1, n2 + 1, n3 + 1), NEG)
    messages = 0
    comm_bytes = 0
    per_proc_cells = [0] * procs
    n_blocks = 0

    filled: set[tuple[int, int, int]] = set()
    for blk in grid.blocks():
        n_blocks += 1
        own = grid.owner(blk, procs, mapping)
        # Receive ghosts: every cross-owner dependency is one message of
        # the boundary payload (cells * 8 bytes), exactly as simulated.
        for src, payload in grid.dependencies(blk):
            if src not in filled:
                raise ProtocolError(
                    f"wavefront order violated: {blk} before {src}"
                )
            if grid.owner(src, procs, mapping) != own:
                messages += 1
                comm_bytes += payload * 8
        lo = tuple(idx * b for idx, b in zip(blk, grid.block))
        hi = tuple(
            min((idx + 1) * b, dim) - 1
            for idx, b, dim in zip(blk, grid.block, grid.dims)
        )
        _fill_block(D, lo, hi, sab, sac, sbc, g2)  # type: ignore[arg-type]
        per_proc_cells[own] += grid.block_cells(blk)
        filled.add(blk)

    return BlockedResult(
        score=float(D[n1, n2, n3]),
        messages=messages,
        comm_bytes=comm_bytes,
        blocks=n_blocks,
        per_proc_cells=per_proc_cells,
    )
