"""Series builders over the cluster simulator.

Each helper runs :func:`repro.cluster.simulate.simulate_wavefront` across a
parameter sweep and returns plain lists, ready for
:func:`repro.util.tables.format_series` — the "figure as numbers" output
format of the benchmark harness.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import MachineModel
from repro.cluster.simulate import SimResult, simulate_wavefront


def sweep_procs(
    n: int,
    procs_list: Sequence[int],
    machine: MachineModel,
    block: int = 16,
    mapping: str = "pencil",
) -> list[SimResult]:
    """Simulate an ``n``-cubed problem at each processor count."""
    grid = BlockGrid.for_sequences(n, n, n, block)
    return [
        simulate_wavefront(grid, machine.with_procs(p), mapping=mapping)
        for p in procs_list
    ]


def speedup_series(
    n: int,
    procs_list: Sequence[int],
    machine: MachineModel,
    block: int = 16,
    mapping: str = "pencil",
) -> list[float]:
    """Speedup at each processor count (figure F1's y-values)."""
    return [
        r.speedup
        for r in sweep_procs(n, procs_list, machine, block, mapping)
    ]


def efficiency_series(
    n: int,
    procs_list: Sequence[int],
    machine: MachineModel,
    block: int = 16,
    mapping: str = "pencil",
) -> list[float]:
    """Parallel efficiency at each processor count (figure F2)."""
    return [
        r.efficiency
        for r in sweep_procs(n, procs_list, machine, block, mapping)
    ]


def comm_volume_series(
    n: int,
    procs_list: Sequence[int],
    machine: MachineModel,
    block: int = 16,
    mapping: str = "pencil",
) -> list[int]:
    """Total bytes crossing processor boundaries at each count (figure F6)."""
    return [
        r.comm_volume_bytes
        for r in sweep_procs(n, procs_list, machine, block, mapping)
    ]


def block_sweep(
    n: int,
    blocks: Sequence[int],
    machine: MachineModel,
    mapping: str = "pencil",
) -> list[SimResult]:
    """Simulate a fixed problem across block sizes (figure F4)."""
    out = []
    for b in blocks:
        grid = BlockGrid.for_sequences(n, n, n, b)
        out.append(simulate_wavefront(grid, machine, mapping=mapping))
    return out
