"""Distributed-memory execution with real inter-process messages.

The closest thing to the paper's MPI program this container can run: each
rank is an OS process owning the blocks its mapping assigns, **storing
only those blocks plus received ghosts** (no shared cube), and
exchanging one-cell ghost layers through per-rank message queues. Rank
communication follows exactly the dependency structure the simulator
times and :mod:`repro.cluster.execute` audits:

* a block's fill may read its own rank's neighbouring blocks directly;
* cross-rank dependencies arrive as tagged messages
  ``("ghost", (src_block, dst_block, direction), payload, crc32)``;
* the rank owning the terminal block reports the final score.

Fault tolerance (see ``docs/robustness.md``): every payload carries a
CRC32 trailer; a receiver that detects corruption NACKs the sender, which
retransmits from its sent-payload store. Every queue wait goes through
:func:`repro.resilience.retry.queue_get_with_retry` — bounded, with a
liveness probe — so a dead rank surfaces as a typed
:class:`~repro.resilience.errors.WorkerFailure` carrying the failure log
instead of a bare ``queue.Empty`` after a blind minute. Per-rank failure
accounting (checksum rejects, resends) flows through ``repro.obs``.

Designed for validation at modest sizes (the per-block fill is scalar):
the test suite pins it against the monolithic engines for a battery of
shapes, mappings and rank counts. For throughput, use
:mod:`repro.parallel`; for scale studies, :mod:`repro.cluster.simulate`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as _queue
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.blockgrid import BlockGrid
from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.obs import hooks as _obs
from repro.parallel.shared import fork_available
from repro.resilience import faults as _faults
from repro.resilience.errors import FailureRecord, WorkerFailure
from repro.resilience.retry import (
    comm_deadline,
    corrupt_payload,
    payload_checksum,
    queue_get_with_retry,
    verify_payload,
)
from repro.util.validation import check_positive, check_sequences

#: The seven ghost directions (di, dj, dk) a block may receive from.
_DIRECTIONS = [
    (di, dj, dk)
    for di in (0, 1)
    for dj in (0, 1)
    for dk in (0, 1)
    if (di, dj, dk) != (0, 0, 0)
]

_STOP = ("stop",)


@dataclass
class DistributedResult:
    """Outcome of a distributed run."""

    score: float
    messages: int
    comm_bytes: int
    procs: int
    #: Corrupted payloads detected (and retransmitted) across all ranks.
    checksum_bad: int = 0
    #: Retransmissions performed by senders in response to NACKs.
    resends: int = 0
    per_rank_stats: dict[int, dict[str, int]] = field(default_factory=dict)


def _block_ranges(
    grid: BlockGrid, blk: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
    """Half-open global cell ranges of a block, per axis."""
    out = []
    for axis in range(3):
        lo = blk[axis] * grid.block[axis]
        hi = min(lo + grid.block[axis], grid.dims[axis])
        out.append((lo, hi))
    return tuple(out)  # type: ignore[return-value]


def _boundary_slice(
    data: np.ndarray, direction: tuple[int, int, int]
) -> np.ndarray:
    """The trailing boundary of a block's cell array along ``direction``
    (face for one set axis, edge for two, corner for three)."""
    idx = tuple(
        (slice(-1, None) if d else slice(None)) for d in direction
    )
    return np.ascontiguousarray(data[idx])


def _fill_block_with_halo(
    halo: np.ndarray,
    lo: tuple[int, int, int],
    shape: tuple[int, int, int],
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
) -> None:
    """Fill ``halo[1:, 1:, 1:]`` (the block) reading only the halo.

    ``halo`` has one extra leading layer per axis holding ghost values (or
    ``NEG`` outside the lattice); local cell ``(x, y, z)`` is global
    ``(lo[0]+x, lo[1]+y, lo[2]+z)``.
    """
    bx, by, bz = shape
    gi0, gj0, gk0 = lo
    for d in range(bx + by + bz - 2):
        for x in range(max(0, d - (by - 1) - (bz - 1)), min(bx - 1, d) + 1):
            yl = max(0, d - x - (bz - 1))
            yh = min(by - 1, d - x)
            for y in range(yl, yh + 1):
                z = d - x - y
                i, j, k = gi0 + x, gj0 + y, gk0 + z
                if i == 0 and j == 0 and k == 0:
                    halo[1, 1, 1] = 0.0
                    continue
                hx, hy, hz = x + 1, y + 1, z + 1
                best = NEG
                if i >= 1:
                    v = halo[hx - 1, hy, hz] + g2
                    if v > best:
                        best = v
                if j >= 1:
                    v = halo[hx, hy - 1, hz] + g2
                    if v > best:
                        best = v
                if k >= 1:
                    v = halo[hx, hy, hz - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1:
                    v = halo[hx - 1, hy - 1, hz] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and k >= 1:
                    v = halo[hx - 1, hy, hz - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best = v
                if j >= 1 and k >= 1:
                    v = halo[hx, hy - 1, hz - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        halo[hx - 1, hy - 1, hz - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best = v
                halo[hx, hy, hz] = best


def _assemble_halo(
    grid: BlockGrid,
    blk: tuple[int, int, int],
    local_blocks: dict[tuple[int, int, int], np.ndarray],
    ghosts: dict[tuple, np.ndarray],
    owner,
    rank: int,
) -> np.ndarray:
    """Build the (+1 leading layer per axis) halo array for ``blk``."""
    (i0, i1), (j0, j1), (k0, k1) = _block_ranges(grid, blk)
    shape = (i1 - i0, j1 - j0, k1 - k0)
    halo = np.full(tuple(s + 1 for s in shape), NEG)
    for direction in _DIRECTIONS:
        src = tuple(b - d for b, d in zip(blk, direction))
        if min(src) < 0:
            continue
        if owner(src) == rank:
            payload = _boundary_slice(local_blocks[src], direction)
        else:
            payload = ghosts.pop((src, blk, direction))
        # Destination: the leading layer(s) of the halo.
        idx = tuple(
            (slice(0, 1) if d else slice(1, None)) for d in direction
        )
        halo[idx] = payload.reshape(halo[idx].shape)
    return halo


def _rank_inject(rank: int, block_index: int) -> None:
    """Enact crash/straggler faults at a block boundary (rank 0 runs in
    the driving process and is never crashed)."""
    if not _faults.enabled:
        return
    if rank != 0:
        spec = _faults.fire(
            "worker_crash", engine="mpirun", rank=rank, block=block_index
        )
        if spec is not None:
            os._exit(13)
    spec = _faults.fire(
        "straggler", engine="mpirun", rank=rank, block=block_index
    )
    if spec is not None:
        time.sleep(spec.delay)


def _rank_main(
    rank: int,
    grid: BlockGrid,
    procs: int,
    mapping: str,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    queues: list,
    result_q,
    service_after: bool = True,
    liveness_extra=None,
) -> tuple[dict, dict[str, int]]:
    """One rank: process owned blocks in wavefront order.

    Returns ``(sent_store, stats)`` — the retransmit store and the
    failure-accounting counters — for the rank that runs inline (rank 0);
    child ranks additionally keep servicing NACKs after reporting their
    result, until the parent sends the stop sentinel.
    """

    def owner(b: tuple[int, int, int]) -> int:
        return grid.owner(b, procs, mapping)

    local_blocks: dict[tuple[int, int, int], np.ndarray] = {}
    ghosts: dict[tuple, np.ndarray] = {}
    #: Cross-rank payloads sent, kept for NACK-triggered retransmission.
    sent_store: dict[tuple, np.ndarray] = {}
    stats = {"checksum_bad": 0, "resends": 0}
    sent_messages = 0
    sent_bytes = 0
    terminal = tuple(g - 1 for g in grid.grid_shape)
    deadline = comm_deadline()

    def liveness() -> None:
        parent = mp.parent_process()
        if parent is not None and not parent.is_alive():
            raise WorkerFailure(
                f"rank {rank}: driver process died; aborting",
                [
                    FailureRecord(
                        engine="mpirun", worker=rank, reason="orphaned rank"
                    )
                ],
            )
        if liveness_extra is not None:
            liveness_extra()

    def handle(msg) -> str | None:
        """Process one queue message; returns its tag for stop detection."""
        tag = msg[0]
        if tag == "ghost":
            _tag, key, payload, crc = msg
            if verify_payload(payload, crc):
                ghosts[key] = payload
            else:
                # Corrupted in transit: drop it and ask the sender for a
                # retransmit. The retry loop keeps waiting for the fresh
                # copy.
                stats["checksum_bad"] += 1
                queues[owner(key[0])].put(("nack", key, rank))
        elif tag == "nack":
            _tag, key, req_rank = msg
            payload = sent_store[key]
            queues[req_rank].put(
                ("ghost", key, payload, payload_checksum(payload))
            )
            stats["resends"] += 1
        return tag

    for block_index, blk in enumerate(grid.blocks()):
        if owner(blk) != rank:
            continue
        _rank_inject(rank, block_index)
        # Pull messages until every cross-rank ghost for blk is here.
        needed = [
            (tuple(b - d for b, d in zip(blk, direction)), direction)
            for direction in _DIRECTIONS
            if min(b - d for b, d in zip(blk, direction)) >= 0
        ]
        needed = [
            (src, direction)
            for src, direction in needed
            if owner(src) != rank
        ]
        while any(
            (src, blk, direction) not in ghosts for src, direction in needed
        ):
            msg = queue_get_with_retry(
                queues[rank],
                deadline=deadline,
                liveness=liveness,
                what=f"ghosts for block {blk} on rank {rank}",
            )
            handle(msg)
        halo = _assemble_halo(grid, blk, local_blocks, ghosts, owner, rank)
        (i0, i1), (j0, j1), (k0, k1) = _block_ranges(grid, blk)
        _fill_block_with_halo(
            halo, (i0, j0, k0), (i1 - i0, j1 - j0, k1 - k0),
            sab, sac, sbc, g2,
        )
        data = np.ascontiguousarray(halo[1:, 1:, 1:])
        local_blocks[blk] = data
        # Push ghosts to cross-rank successors.
        gi, gj, gk = grid.grid_shape
        for direction in _DIRECTIONS:
            dst = tuple(b + d for b, d in zip(blk, direction))
            if dst[0] >= gi or dst[1] >= gj or dst[2] >= gk:
                continue
            dst_rank = owner(dst)
            if dst_rank == rank:
                continue
            payload = _boundary_slice(data, direction)
            key = (blk, dst, direction)
            crc = payload_checksum(payload)
            sent_store[key] = payload
            wire = payload
            spec = _faults.fire(
                "corrupt_ghost", engine="mpirun", rank=dst_rank
            )
            if spec is not None:
                # Wire corruption happens after the checksum: the
                # receiver must catch it.
                wire = corrupt_payload(payload)
            queues[dst_rank].put(("ghost", key, wire, crc))
            sent_messages += 1
            sent_bytes += payload.size * 8

    final = None
    if owner(terminal) == rank:
        final = float(local_blocks[terminal][-1, -1, -1])
    result_q.put((rank, final, sent_messages, sent_bytes, dict(stats)))

    if service_after:
        # Keep answering NACKs for payloads this rank sent until every
        # rank is done (the driver sends the stop sentinel then). No
        # overall deadline: slow peers are legitimate; an orphaned rank
        # exits via the liveness check.
        while True:
            try:
                msg = queues[rank].get(timeout=0.5)
            except _queue.Empty:
                liveness()
                continue
            if handle(msg) == "stop":
                break
    return sent_store, stats


def run_distributed(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    block: int | tuple[int, int, int] = 8,
    procs: int = 3,
    mapping: str = "pencil",
) -> DistributedResult:
    """Compute the optimal SP score on ``procs`` real processes.

    Each rank stores only its own blocks; ghosts travel through
    ``multiprocessing`` queues with CRC32 verification and NACK-driven
    retransmission. Falls back to a single in-process rank when ``fork``
    is unavailable or ``procs == 1``. A dead rank raises
    :class:`WorkerFailure` carrying the failure log.
    """
    check_sequences((sa, sb, sc), count=3)
    check_positive("procs", procs)
    if scheme.is_affine:
        raise ValueError("run_distributed implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    grid = BlockGrid.for_sequences(n1, n2, n3, block)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    if procs == 1 or not fork_available():
        from repro.cluster.execute import execute_blocked

        res = execute_blocked(
            sa, sb, sc, scheme, block=block, procs=1, mapping=mapping
        )
        return DistributedResult(
            score=res.score, messages=0, comm_bytes=0, procs=1
        )

    ctx = mp.get_context("fork")
    queues = [ctx.Queue() for _ in range(procs)]
    result_q = ctx.Queue()
    workers: dict[int, mp.Process] = {
        r: ctx.Process(
            target=_rank_main,
            args=(
                r, grid, procs, mapping, sab, sac, sbc, g2, queues, result_q
            ),
            daemon=True,
        )
        for r in range(1, procs)
    }
    try:
        for w in workers.values():
            w.start()

        reported: set[int] = set()

        def check_ranks() -> None:
            for r, w in workers.items():
                if r not in reported and not w.is_alive() and w.exitcode != 0:
                    record = FailureRecord(
                        engine="mpirun",
                        worker=r,
                        reason=f"rank {r} died before reporting",
                        exitcode=w.exitcode,
                    )
                    _obs.record_failure("mpirun", r, None, record.reason)
                    raise WorkerFailure(
                        f"rank {r} died before reporting its result "
                        f"(exitcode {w.exitcode})",
                        [record],
                    )

        sent_store0, stats0 = _rank_main(
            0, grid, procs, mapping, sab, sac, sbc, g2, queues, result_q,
            service_after=False,
            liveness_extra=check_ranks,
        )

        def service_rank0() -> None:
            """Answer NACKs addressed to rank 0 while collecting results."""
            while True:
                try:
                    msg = queues[0].get_nowait()
                except _queue.Empty:
                    return
                tag = msg[0]
                if tag == "nack":
                    _tag, key, req_rank = msg
                    payload = sent_store0[key]
                    queues[req_rank].put(
                        ("ghost", key, payload, payload_checksum(payload))
                    )
                    stats0["resends"] += 1

        score = None
        messages = 0
        comm_bytes = 0
        per_rank_stats: dict[int, dict[str, int]] = {}
        deadline = max(120.0, 2 * comm_deadline())
        end = time.perf_counter() + deadline
        while len(reported) < procs:
            service_rank0()
            check_ranks()
            if time.perf_counter() > end:
                missing = sorted(set(range(procs)) - reported)
                raise WorkerFailure(
                    f"ranks {missing} never reported within {deadline:.0f}s",
                    [
                        FailureRecord(
                            engine="mpirun", worker=r, reason="no result"
                        )
                        for r in missing
                    ],
                )
            try:
                rank, final, sent, sent_b, stats = result_q.get(timeout=0.1)
            except _queue.Empty:
                continue
            reported.add(rank)
            messages += sent
            comm_bytes += sent_b
            per_rank_stats[rank] = stats
            if final is not None:
                score = final
        # All ranks have computed; release the NACK service loops.
        for r in range(1, procs):
            queues[r].put(_STOP)
        for w in workers.values():
            w.join(timeout=30)
        # Rank 0's resend counter may have grown while servicing above.
        per_rank_stats[0] = stats0
        checksum_bad = sum(s["checksum_bad"] for s in per_rank_stats.values())
        resends = sum(s["resends"] for s in per_rank_stats.values())
        for r, s in sorted(per_rank_stats.items()):
            if s["checksum_bad"] or s["resends"]:
                _obs.record_comm(
                    r,
                    checksum_bad=s["checksum_bad"],
                    resends=s["resends"],
                )
        if score is None:  # pragma: no cover - would be a mapping bug
            raise RuntimeError("no rank reported the terminal block")
        return DistributedResult(
            score=score,
            messages=messages,
            comm_bytes=comm_bytes,
            procs=procs,
            checksum_bad=checksum_bad,
            resends=resends,
            per_rank_stats=per_rank_stats,
        )
    finally:
        for w in workers.values():
            if w.is_alive():
                w.terminate()
                w.join(timeout=5)
                if w.is_alive():  # pragma: no cover
                    w.kill()
                    w.join(timeout=5)
