"""Distributed-memory execution with real inter-process messages.

The closest thing to the paper's MPI program this container can run: each
rank is an OS process owning the blocks its mapping assigns, **storing
only those blocks plus received ghosts** (no shared cube), and
exchanging one-cell ghost layers through per-rank message queues. Rank
communication follows exactly the dependency structure the simulator
times and :mod:`repro.cluster.execute` audits:

* a block's fill may read its own rank's neighbouring blocks directly;
* cross-rank dependencies arrive as tagged messages
  ``((src_block, dst_block, direction), payload_array)``;
* the rank owning the terminal block reports the final score.

Designed for validation at modest sizes (the per-block fill is scalar):
the test suite pins it against the monolithic engines for a battery of
shapes, mappings and rank counts. For throughput, use
:mod:`repro.parallel`; for scale studies, :mod:`repro.cluster.simulate`.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.cluster.blockgrid import BlockGrid
from repro.core.dp3d import NEG
from repro.core.scoring import ScoringScheme
from repro.parallel.shared import fork_available
from repro.util.validation import check_positive, check_sequences

#: The seven ghost directions (di, dj, dk) a block may receive from.
_DIRECTIONS = [
    (di, dj, dk)
    for di in (0, 1)
    for dj in (0, 1)
    for dk in (0, 1)
    if (di, dj, dk) != (0, 0, 0)
]


@dataclass
class DistributedResult:
    """Outcome of a distributed run."""

    score: float
    messages: int
    comm_bytes: int
    procs: int


def _block_ranges(
    grid: BlockGrid, blk: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
    """Half-open global cell ranges of a block, per axis."""
    out = []
    for axis in range(3):
        lo = blk[axis] * grid.block[axis]
        hi = min(lo + grid.block[axis], grid.dims[axis])
        out.append((lo, hi))
    return tuple(out)  # type: ignore[return-value]


def _boundary_slice(
    data: np.ndarray, direction: tuple[int, int, int]
) -> np.ndarray:
    """The trailing boundary of a block's cell array along ``direction``
    (face for one set axis, edge for two, corner for three)."""
    idx = tuple(
        (slice(-1, None) if d else slice(None)) for d in direction
    )
    return np.ascontiguousarray(data[idx])


def _fill_block_with_halo(
    halo: np.ndarray,
    lo: tuple[int, int, int],
    shape: tuple[int, int, int],
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
) -> None:
    """Fill ``halo[1:, 1:, 1:]`` (the block) reading only the halo.

    ``halo`` has one extra leading layer per axis holding ghost values (or
    ``NEG`` outside the lattice); local cell ``(x, y, z)`` is global
    ``(lo[0]+x, lo[1]+y, lo[2]+z)``.
    """
    bx, by, bz = shape
    gi0, gj0, gk0 = lo
    for d in range(bx + by + bz - 2):
        for x in range(max(0, d - (by - 1) - (bz - 1)), min(bx - 1, d) + 1):
            yl = max(0, d - x - (bz - 1))
            yh = min(by - 1, d - x)
            for y in range(yl, yh + 1):
                z = d - x - y
                i, j, k = gi0 + x, gj0 + y, gk0 + z
                if i == 0 and j == 0 and k == 0:
                    halo[1, 1, 1] = 0.0
                    continue
                hx, hy, hz = x + 1, y + 1, z + 1
                best = NEG
                if i >= 1:
                    v = halo[hx - 1, hy, hz] + g2
                    if v > best:
                        best = v
                if j >= 1:
                    v = halo[hx, hy - 1, hz] + g2
                    if v > best:
                        best = v
                if k >= 1:
                    v = halo[hx, hy, hz - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1:
                    v = halo[hx - 1, hy - 1, hz] + sab[i - 1, j - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and k >= 1:
                    v = halo[hx - 1, hy, hz - 1] + sac[i - 1, k - 1] + g2
                    if v > best:
                        best = v
                if j >= 1 and k >= 1:
                    v = halo[hx, hy - 1, hz - 1] + sbc[j - 1, k - 1] + g2
                    if v > best:
                        best = v
                if i >= 1 and j >= 1 and k >= 1:
                    v = (
                        halo[hx - 1, hy - 1, hz - 1]
                        + sab[i - 1, j - 1]
                        + sac[i - 1, k - 1]
                        + sbc[j - 1, k - 1]
                    )
                    if v > best:
                        best = v
                halo[hx, hy, hz] = best


def _assemble_halo(
    grid: BlockGrid,
    blk: tuple[int, int, int],
    local_blocks: dict[tuple[int, int, int], np.ndarray],
    ghosts: dict[tuple, np.ndarray],
    owner,
    rank: int,
) -> np.ndarray:
    """Build the (+1 leading layer per axis) halo array for ``blk``."""
    (i0, i1), (j0, j1), (k0, k1) = _block_ranges(grid, blk)
    shape = (i1 - i0, j1 - j0, k1 - k0)
    halo = np.full(tuple(s + 1 for s in shape), NEG)
    for direction in _DIRECTIONS:
        src = tuple(b - d for b, d in zip(blk, direction))
        if min(src) < 0:
            continue
        if owner(src) == rank:
            payload = _boundary_slice(local_blocks[src], direction)
        else:
            payload = ghosts.pop((src, blk, direction))
        # Destination: the leading layer(s) of the halo.
        idx = tuple(
            (slice(0, 1) if d else slice(1, None)) for d in direction
        )
        halo[idx] = payload.reshape(halo[idx].shape)
    return halo


def _rank_main(
    rank: int,
    grid: BlockGrid,
    procs: int,
    mapping: str,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    queues: list,
    result_q,
) -> None:
    """One rank: process owned blocks in wavefront order."""

    def owner(b: tuple[int, int, int]) -> int:
        return grid.owner(b, procs, mapping)

    local_blocks: dict[tuple[int, int, int], np.ndarray] = {}
    ghosts: dict[tuple, np.ndarray] = {}
    sent_messages = 0
    sent_bytes = 0
    terminal = tuple(g - 1 for g in grid.grid_shape)

    for blk in grid.blocks():
        if owner(blk) != rank:
            continue
        # Pull messages until every cross-rank ghost for blk is here.
        needed = [
            (tuple(b - d for b, d in zip(blk, direction)), direction)
            for direction in _DIRECTIONS
            if min(b - d for b, d in zip(blk, direction)) >= 0
        ]
        needed = [
            (src, direction)
            for src, direction in needed
            if owner(src) != rank
        ]
        while any(
            (src, blk, direction) not in ghosts for src, direction in needed
        ):
            # A generous timeout converts a (hypothetical) protocol bug
            # into a visible failure instead of a hang.
            key, payload = queues[rank].get(timeout=60)
            ghosts[key] = payload
        halo = _assemble_halo(grid, blk, local_blocks, ghosts, owner, rank)
        (i0, i1), (j0, j1), (k0, k1) = _block_ranges(grid, blk)
        _fill_block_with_halo(
            halo, (i0, j0, k0), (i1 - i0, j1 - j0, k1 - k0),
            sab, sac, sbc, g2,
        )
        data = np.ascontiguousarray(halo[1:, 1:, 1:])
        local_blocks[blk] = data
        # Push ghosts to cross-rank successors.
        gi, gj, gk = grid.grid_shape
        for direction in _DIRECTIONS:
            dst = tuple(b + d for b, d in zip(blk, direction))
            if dst[0] >= gi or dst[1] >= gj or dst[2] >= gk:
                continue
            dst_rank = owner(dst)
            if dst_rank == rank:
                continue
            payload = _boundary_slice(data, direction)
            queues[dst_rank].put(((blk, dst, direction), payload))
            sent_messages += 1
            sent_bytes += payload.size * 8

    final = None
    if owner(terminal) == rank:
        final = float(local_blocks[terminal][-1, -1, -1])
    result_q.put((rank, final, sent_messages, sent_bytes))


def run_distributed(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    block: int | tuple[int, int, int] = 8,
    procs: int = 3,
    mapping: str = "pencil",
) -> DistributedResult:
    """Compute the optimal SP score on ``procs`` real processes.

    Each rank stores only its own blocks; ghosts travel through
    ``multiprocessing`` queues. Falls back to a single in-process rank
    when ``fork`` is unavailable or ``procs == 1``.
    """
    check_sequences((sa, sb, sc), count=3)
    check_positive("procs", procs)
    if scheme.is_affine:
        raise ValueError("run_distributed implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    grid = BlockGrid.for_sequences(n1, n2, n3, block)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    if procs == 1 or not fork_available():
        from repro.cluster.execute import execute_blocked

        res = execute_blocked(
            sa, sb, sc, scheme, block=block, procs=1, mapping=mapping
        )
        return DistributedResult(
            score=res.score, messages=0, comm_bytes=0, procs=1
        )

    ctx = mp.get_context("fork")
    queues = [ctx.Queue() for _ in range(procs)]
    result_q = ctx.Queue()
    workers = [
        ctx.Process(
            target=_rank_main,
            args=(
                r, grid, procs, mapping, sab, sac, sbc, g2, queues, result_q
            ),
            daemon=True,
        )
        for r in range(1, procs)
    ]
    for w in workers:
        w.start()
    _rank_main(0, grid, procs, mapping, sab, sac, sbc, g2, queues, result_q)

    score = None
    messages = 0
    comm_bytes = 0
    for _ in range(procs):
        _rank, final, sent, sent_b = result_q.get(timeout=120)
        messages += sent
        comm_bytes += sent_b
        if final is not None:
            score = final
    for w in workers:
        w.join(timeout=30)
    if score is None:  # pragma: no cover - would be a mapping bug
        raise RuntimeError("no rank reported the terminal block")
    return DistributedResult(
        score=score, messages=messages, comm_bytes=comm_bytes, procs=procs
    )
