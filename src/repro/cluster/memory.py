"""Per-rank memory accounting for the distributed algorithm.

The argument for distributing the 3-D DP is as much *memory* as speed: the
full cube exceeds a single node long before time does. This module
estimates each rank's footprint under a block decomposition:

``full`` mode
    The rank stores every cell of every block it owns (8-byte score +
    1-byte move for traceback) plus the ghost faces it receives.
``score_only`` mode
    The rank streams blocks with a rolling working set — four plane
    buffers per *active* pencil plus ghosts — so its footprint scales with
    its cross-section, not its volume.

Experiment T5 turns these into the per-rank memory table the paper family
uses to argue length scalability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.blockgrid import BlockGrid
from repro.util.validation import check_positive

#: Bytes per stored DP cell with traceback (float64 score + int8 move).
FULL_CELL_BYTES = 9
#: Bytes per score-only cell (float64).
SCORE_CELL_BYTES = 8


@dataclass
class MemoryProfile:
    """Per-rank memory summary (bytes)."""

    per_rank: list[int]
    mode: str

    @property
    def max_rank(self) -> int:
        """The constrained rank's footprint (what limits problem size)."""
        return max(self.per_rank) if self.per_rank else 0

    @property
    def mean_rank(self) -> float:
        """Average per-rank footprint."""
        return sum(self.per_rank) / len(self.per_rank) if self.per_rank else 0.0

    @property
    def imbalance(self) -> float:
        """max / mean (1.0 = perfectly balanced)."""
        mean = self.mean_rank
        return self.max_rank / mean if mean else 0.0


def per_rank_memory(
    grid: BlockGrid,
    procs: int,
    mapping: str = "pencil",
    mode: str = "full",
) -> MemoryProfile:
    """Estimate every rank's memory footprint in bytes.

    Parameters
    ----------
    mode:
        ``"full"`` — all owned cells resident (global traceback);
        ``"score_only"`` — rolling planes per owned pencil (score or
        divide-and-conquer traceback).
    """
    check_positive("procs", procs)
    if mode not in ("full", "score_only"):
        raise ValueError(f"unknown mode {mode!r}")
    ghost = [0] * procs
    owned_cells = [0] * procs
    pencil_sections: list[dict[tuple[int, int], int]] = [
        {} for _ in range(procs)
    ]
    for blk in grid.blocks():
        own = grid.owner(blk, procs, mapping)
        cells = grid.block_cells(blk)
        owned_cells[own] += cells
        # Cross-section of this block's pencil (j, k extents).
        section = cells // max(grid.extent(0, blk[0]), 1)
        key = (blk[1], blk[2])
        prev = pencil_sections[own].get(key, 0)
        pencil_sections[own][key] = max(prev, section)
        for src, payload in grid.dependencies(blk):
            if grid.owner(src, procs, mapping) != own:
                ghost[own] += payload * SCORE_CELL_BYTES

    per_rank: list[int] = []
    for p in range(procs):
        if mode == "full":
            per_rank.append(owned_cells[p] * FULL_CELL_BYTES + ghost[p])
        else:
            planes = 4 * sum(pencil_sections[p].values()) * SCORE_CELL_BYTES
            per_rank.append(planes + ghost[p])
    return MemoryProfile(per_rank=per_rank, mode=mode)


def max_length_for_budget(
    budget_bytes: int,
    procs: int,
    block: int = 16,
    mapping: str = "pencil",
    mode: str = "full",
    max_n: int = 2048,
) -> int:
    """Largest equal-length problem whose constrained rank fits ``budget``.

    Doubling search then bisection on the cubic (full) or quadratic
    (score-only) per-rank curve. ``max_n`` caps the search (the block
    enumeration is O((n/block)^3) per probe).
    """
    check_positive("budget_bytes", budget_bytes)
    check_positive("max_n", max_n)

    def fits(n: int) -> bool:
        grid = BlockGrid.for_sequences(n, n, n, block)
        return (
            per_rank_memory(grid, procs, mapping, mode).max_rank
            <= budget_bytes
        )

    if not fits(1):
        return 0
    lo, hi = 1, 2
    while hi <= max_n and fits(hi):
        lo, hi = hi, hi * 2
    if hi > max_n:
        if fits(max_n):
            return max_n
        hi = max_n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo
