"""Heterogeneous clusters: unequal node speeds and weighted ownership.

The paper's group worked extensively on heterogeneous computing, and the
natural stress test for a static block mapping is a cluster where nodes
differ in speed: round-robin pencil assignment then leaves the fast nodes
idling at every wavefront barrier while the slow ones finish.

This module models per-processor speeds (:class:`HeterogeneousMachine`),
simulates the block wavefront on them, and provides a *weighted* pencil
assignment (:func:`weighted_pencil_owners`) — greedy longest-processing-
time placement of pencil workloads onto processors scaled by speed — to
restore balance. Experiment A3 quantifies the recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.simulate import SimResult
from repro.util.validation import check_positive


@dataclass(frozen=True)
class HeterogeneousMachine:
    """A cluster whose processors have individual per-cell times.

    Parameters
    ----------
    t_cells:
        Per-processor seconds per DP cell (length = processor count).
    alpha, beta:
        Uniform link latency (s/message) and inverse bandwidth (s/byte).
    bytes_per_cell:
        Ghost payload bytes per boundary cell.
    """

    t_cells: tuple[float, ...]
    alpha: float = 1.0e-4
    beta: float = 8.0e-8
    bytes_per_cell: int = 8
    name: str = "hetero"

    def __post_init__(self) -> None:
        if not self.t_cells:
            raise ValueError("t_cells must not be empty")
        for t in self.t_cells:
            check_positive("t_cells entries", t)
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be >= 0")

    @property
    def procs(self) -> int:
        """Number of processors."""
        return len(self.t_cells)

    @property
    def total_speed(self) -> float:
        """Aggregate cells/second across the cluster."""
        return sum(1.0 / t for t in self.t_cells)

    def compute_time(self, cells: int, proc: int) -> float:
        """Time for ``proc`` to evaluate ``cells`` DP cells."""
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return cells * self.t_cells[proc]

    def comm_time(self, payload_bytes: int) -> float:
        """Latency + bandwidth cost of one message."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        return self.alpha + self.beta * payload_bytes

    def ideal_serial_time(self, total_cells: int) -> float:
        """One-processor time on the *fastest* node (speedup baseline)."""
        return total_cells * min(self.t_cells)


def uniform_with_stragglers(
    procs: int,
    t_cell: float = 2.0e-8,
    stragglers: int = 1,
    slowdown: float = 4.0,
) -> HeterogeneousMachine:
    """A mostly-uniform cluster with ``stragglers`` nodes ``slowdown``×
    slower — the canonical heterogeneity stress case."""
    check_positive("procs", procs)
    if not 0 <= stragglers <= procs:
        raise ValueError("stragglers must be in [0, procs]")
    check_positive("slowdown", slowdown)
    t = [t_cell] * procs
    for idx in range(stragglers):
        t[idx] = t_cell * slowdown
    return HeterogeneousMachine(t_cells=tuple(t))


def weighted_pencil_owners(
    grid: BlockGrid, machine: HeterogeneousMachine
) -> dict[tuple[int, int], int]:
    """Assign pencil columns to processors proportionally to speed.

    Greedy LPT: pencils (sorted by their cell load, descending) go to the
    processor whose *scaled* accumulated load (cells × t_cell) is lowest.
    Returns a map ``(J, K) -> proc``.
    """
    gi, gj, gk = grid.grid_shape
    loads: dict[tuple[int, int], int] = {}
    for blk in grid.blocks():
        key = (blk[1], blk[2])
        loads[key] = loads.get(key, 0) + grid.block_cells(blk)
    assigned: dict[tuple[int, int], int] = {}
    proc_time = [0.0] * machine.procs
    for key, cells in sorted(
        loads.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        best = min(
            range(machine.procs),
            key=lambda p: (proc_time[p] + cells * machine.t_cells[p], p),
        )
        assigned[key] = best
        proc_time[best] += cells * machine.t_cells[best]
    return assigned


def simulate_wavefront_hetero(
    grid: BlockGrid,
    machine: HeterogeneousMachine,
    mapping: str = "weighted",
) -> SimResult:
    """Simulate the block wavefront on a heterogeneous cluster.

    ``mapping``: ``"weighted"`` (speed-proportional pencil assignment) or
    any homogeneous :class:`BlockGrid` mapping name (``pencil``/``linear``/
    ``slab``) applied blindly, for comparison.
    """
    procs = machine.procs
    if mapping == "weighted":
        pencil_owner = weighted_pencil_owners(grid, machine)

        def owner(blk: tuple[int, int, int]) -> int:
            return pencil_owner[(blk[1], blk[2])]

    else:

        def owner(blk: tuple[int, int, int]) -> int:
            return grid.owner(blk, procs, mapping)

    finish: dict[tuple[int, int, int], float] = {}
    proc_avail = [0.0] * procs
    busy = [0.0] * procs
    comm_volume = 0
    comm_time = 0.0
    messages = 0
    n_blocks = 0
    for blk in grid.blocks():
        n_blocks += 1
        own = owner(blk)
        ready = 0.0
        for src, payload_cells in grid.dependencies(blk):
            arrive = finish[src]
            if owner(src) != own:
                payload = payload_cells * machine.bytes_per_cell
                delay = machine.comm_time(payload)
                arrive += delay
                comm_volume += payload
                comm_time += delay
                messages += 1
            ready = max(ready, arrive)
        compute = machine.compute_time(grid.block_cells(blk), own)
        start = max(proc_avail[own], ready)
        end = start + compute
        finish[blk] = end
        proc_avail[own] = end
        busy[own] += compute

    makespan = max(finish.values()) if finish else 0.0
    serial = machine.ideal_serial_time(grid.total_cells())
    return SimResult(
        makespan=makespan,
        serial_time=serial,
        procs=procs,
        comm_volume_bytes=comm_volume,
        messages=messages,
        comm_time_total=comm_time,
        busy_time=busy,
        blocks=n_blocks,
    )
