"""Machine models for the cluster simulation.

A machine is four numbers: processor count ``procs``, per-cell compute time
``t_cell`` (seconds to evaluate one DP cell, all seven candidates), message
latency ``alpha`` (seconds per message) and inverse bandwidth ``beta``
(seconds per byte). Communication cost of a message of ``b`` bytes is the
classic ``alpha + beta * b`` model.

Presets bracket the hardware of the paper's era (Fast Ethernet and Gigabit
PC clusters, 2007) and a modern interconnect; per-cell time defaults to a
C-kernel-like 20 ns and can be calibrated to this machine's actual
vectorised throughput with :func:`calibrate_t_cell`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineModel:
    """A homogeneous distributed-memory machine.

    Parameters
    ----------
    procs:
        Number of processors (MPI ranks / nodes).
    t_cell:
        Seconds to compute one DP cell.
    alpha:
        Per-message latency in seconds.
    beta:
        Seconds per byte of message payload (1 / bandwidth).
    bytes_per_cell:
        Payload bytes exchanged per boundary cell (8 = one float64 score).
    name:
        Label used in reports.
    """

    procs: int
    t_cell: float = 2.0e-8
    alpha: float = 1.0e-4
    beta: float = 8.0e-8
    bytes_per_cell: int = 8
    name: str = "custom"

    def __post_init__(self) -> None:
        check_positive("procs", self.procs)
        check_positive("t_cell", self.t_cell)
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be >= 0")
        check_positive("bytes_per_cell", self.bytes_per_cell)

    def comm_time(self, payload_bytes: int) -> float:
        """Latency+bandwidth cost of one message."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        return self.alpha + self.beta * payload_bytes

    def compute_time(self, cells: int) -> float:
        """Time to evaluate ``cells`` DP cells on one processor."""
        if cells < 0:
            raise ValueError("cells must be >= 0")
        return cells * self.t_cell

    def with_procs(self, procs: int) -> "MachineModel":
        """Same machine with a different processor count."""
        return replace(self, procs=procs)


def ethernet_2007(procs: int, t_cell: float = 2.0e-8) -> MachineModel:
    """Fast-Ethernet PC cluster of the paper's era: ~100 us latency,
    100 Mbit/s links (12.5 MB/s)."""
    return MachineModel(
        procs=procs,
        t_cell=t_cell,
        alpha=1.0e-4,
        beta=8.0e-8,
        name="ethernet-2007",
    )


def gigabit_2007(procs: int, t_cell: float = 2.0e-8) -> MachineModel:
    """Gigabit PC cluster: ~50 us latency, 1 Gbit/s links."""
    return MachineModel(
        procs=procs,
        t_cell=t_cell,
        alpha=5.0e-5,
        beta=8.0e-9,
        name="gigabit-2007",
    )


def modern_cluster(procs: int, t_cell: float = 5.0e-9) -> MachineModel:
    """Modern interconnect: ~2 us latency, ~10 GB/s effective."""
    return MachineModel(
        procs=procs,
        t_cell=t_cell,
        alpha=2.0e-6,
        beta=1.0e-10,
        name="modern",
    )


def calibrate_t_cell(n: int = 60, seed: int = 0) -> float:
    """Measure this machine's per-cell time of the vectorised engine.

    Runs a score-only wavefront sweep on an ``n x n x n`` random DNA problem
    and divides wall time by the cell count. Use the result as ``t_cell``
    to make the simulator predict "what a cluster of machines like this one
    would do".
    """
    from repro.core.scoring import default_scheme_for
    from repro.core.wavefront import wavefront_sweep
    from repro.seqio.alphabet import DNA
    from repro.seqio.generate import random_sequence

    check_positive("n", n)
    seqs = [random_sequence(n, DNA, seed=seed + t) for t in range(3)]
    scheme = default_scheme_for(DNA)
    # Warm-up then measure.
    wavefront_sweep(*seqs, scheme, score_only=True)
    t0 = time.perf_counter()
    res = wavefront_sweep(*seqs, scheme, score_only=True)
    elapsed = time.perf_counter() - t0
    return elapsed / max(res.cells_computed, 1)
