"""Event-driven simulation of the distributed block wavefront.

Scheduling model: blocks are visited in block-plane (wavefront) order — the
order the real distributed algorithm imposes — and each block starts as
soon as (a) its owning processor is free and (b) every predecessor has
finished and its ghost layer has arrived. A ghost layer sent between blocks
on the *same* processor is free; across processors it costs
``alpha + beta * payload_bytes``.

This reproduces the three effects the paper family's figures exhibit:

* **pipeline fill/drain** — early and late block-planes have fewer blocks
  than processors, bounding speedup for small problems;
* **communication rolloff** — per-block latency grows relative to per-block
  compute as blocks shrink or processors multiply;
* **block-size tradeoff** — large blocks amortise latency but lengthen the
  pipeline; small blocks do the opposite (experiment F4 sweeps this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.blockgrid import BlockGrid
from repro.cluster.machine import MachineModel
from repro.obs import hooks as _obs


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    makespan: float
    serial_time: float
    procs: int
    comm_volume_bytes: int
    messages: int
    comm_time_total: float
    busy_time: list[float] = field(default_factory=list)
    blocks: int = 0

    @property
    def speedup(self) -> float:
        """Serial time over simulated parallel makespan."""
        return self.serial_time / self.makespan if self.makespan > 0 else 0.0

    @property
    def efficiency(self) -> float:
        """Speedup normalised by processor count."""
        return self.speedup / self.procs if self.procs else 0.0

    @property
    def avg_utilisation(self) -> float:
        """Mean fraction of the makespan processors spent computing."""
        if not self.busy_time or self.makespan <= 0:
            return 0.0
        return sum(self.busy_time) / (len(self.busy_time) * self.makespan)


def simulate_wavefront(
    grid: BlockGrid,
    machine: MachineModel,
    mapping: str = "pencil",
) -> SimResult:
    """Simulate the block-wavefront execution of ``grid`` on ``machine``.

    Returns a :class:`SimResult`; ``serial_time`` is the one-processor
    compute time of the same cube (no communication), so ``speedup`` is the
    quantity the paper's scaling figures plot.
    """
    procs = machine.procs
    finish: dict[tuple[int, int, int], float] = {}
    proc_avail = [0.0] * procs
    busy = [0.0] * procs
    comm_volume = 0
    comm_time = 0.0
    messages = 0
    n_blocks = 0

    for blk in grid.blocks():
        n_blocks += 1
        own = grid.owner(blk, procs, mapping)
        ready = 0.0
        for src, payload_cells in grid.dependencies(blk):
            src_own = grid.owner(src, procs, mapping)
            arrive = finish[src]
            if src_own != own:
                payload = payload_cells * machine.bytes_per_cell
                delay = machine.comm_time(payload)
                arrive += delay
                comm_volume += payload
                comm_time += delay
                messages += 1
            ready = max(ready, arrive)
        compute = machine.compute_time(grid.block_cells(blk))
        start = max(proc_avail[own], ready)
        end = start + compute
        finish[blk] = end
        proc_avail[own] = end
        busy[own] += compute

    makespan = max(finish.values()) if finish else 0.0
    serial = machine.compute_time(grid.total_cells())
    if _obs.active():
        _obs.record_sim(
            procs=procs,
            blocks=n_blocks,
            messages=messages,
            comm_bytes=comm_volume,
            makespan=makespan,
            speedup=serial / makespan if makespan > 0 else 0.0,
            busy=busy,
        )
    return SimResult(
        makespan=makespan,
        serial_time=serial,
        procs=procs,
        comm_volume_bytes=comm_volume,
        messages=messages,
        comm_time_total=comm_time,
        busy_time=busy,
        blocks=n_blocks,
    )
