"""3-D block decomposition of the DP cube and ownership mappings.

The cube of ``(n1+1) x (n2+1) x (n3+1)`` cells is tiled by blocks of shape
``(b1, b2, b3)``. Blocks inherit the cell-level dependence structure: block
``(I, J, K)`` depends on its (up to) seven lower neighbours, and all blocks
on the block-plane ``I + J + K = s`` are mutually independent — the block
wavefront that the distributed algorithm pipelines.

Ownership mappings
------------------
``pencil`` (default)
    Distribute the ``(J, K)`` block columns round-robin; every ``I`` step
    of a pencil stays on its owner, so the dominant (axis-0) dependence is
    communication-free and the wavefront pipelines across owners — the
    mapping the paper family uses.
``linear``
    Block-cyclic on the linearised block index; scatters neighbours widely
    (a deliberately communication-heavy comparison point).
``slab``
    Contiguous slabs along axis 0; minimises the number of cut edges but
    serialises the wavefront (only one slab is active per block-plane step
    at the start), the classic wrong choice the block wavefront fixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.validation import check_positive

#: Recognised ownership mappings.
MAPPINGS = ("pencil", "linear", "slab")


@dataclass(frozen=True)
class BlockGrid:
    """Tiling of the DP cube into blocks.

    Parameters
    ----------
    dims:
        Cell-grid dimensions ``(n1+1, n2+1, n3+1)`` — i.e. sequence lengths
        plus one, matching the DP lattice.
    block:
        Block shape ``(b1, b2, b3)`` in cells.
    """

    dims: tuple[int, int, int]
    block: tuple[int, int, int]

    def __post_init__(self) -> None:
        for d in self.dims:
            check_positive("dims", d)
        for b in self.block:
            check_positive("block", b)

    @classmethod
    def for_sequences(
        cls, n1: int, n2: int, n3: int, block: int | tuple[int, int, int]
    ) -> "BlockGrid":
        """Grid over the DP lattice of three sequence lengths."""
        if isinstance(block, int):
            block = (block, block, block)
        return cls(dims=(n1 + 1, n2 + 1, n3 + 1), block=block)

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        """Number of blocks along each axis."""
        return tuple(
            -(-d // b) for d, b in zip(self.dims, self.block)
        )  # type: ignore[return-value]

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        gi, gj, gk = self.grid_shape
        return gi * gj * gk

    def blocks(self) -> Iterator[tuple[int, int, int]]:
        """All block coordinates in plane-major (wavefront) order."""
        gi, gj, gk = self.grid_shape
        for s in range(gi + gj + gk - 2):
            for bi in range(max(0, s - gj - gk + 2), min(gi - 1, s) + 1):
                for bj in range(max(0, s - bi - gk + 1), min(gj - 1, s - bi) + 1):
                    yield (bi, bj, s - bi - bj)

    def block_cells(self, b: tuple[int, int, int]) -> int:
        """Number of DP cells inside block ``b`` (boundary blocks are
        smaller)."""
        return (
            self.extent(0, b[0]) * self.extent(1, b[1]) * self.extent(2, b[2])
        )

    def extent(self, axis: int, idx: int) -> int:
        """Cell extent of block index ``idx`` along ``axis`` (boundary
        blocks are clipped to the lattice)."""
        lo = idx * self.block[axis]
        hi = min(lo + self.block[axis], self.dims[axis])
        if idx < 0 or lo >= self.dims[axis]:
            raise IndexError(f"block index {idx} out of range on axis {axis}")
        return hi - lo


    def dependencies(
        self, b: tuple[int, int, int]
    ) -> list[tuple[tuple[int, int, int], int]]:
        """Predecessor blocks of ``b`` with the payload cells each sends.

        The payload of the ``(1,0,0)`` neighbour is its trailing face
        (``b2*b3`` boundary cells), of a ``(1,1,0)`` neighbour its trailing
        edge, of ``(1,1,1)`` the single corner cell — the ghost layers the
        distributed implementation exchanges.
        """
        bi, bj, bk = b
        ext = (self.extent(0, bi), self.extent(1, bj), self.extent(2, bk))
        out = []
        for di in (0, 1):
            for dj in (0, 1):
                for dk in (0, 1):
                    if (di, dj, dk) == (0, 0, 0):
                        continue
                    src = (bi - di, bj - dj, bk - dk)
                    if min(src) < 0:
                        continue
                    payload = 1
                    for axis, delta in enumerate((di, dj, dk)):
                        if not delta:
                            payload *= ext[axis]
                    out.append((src, payload))
        return out

    def owner(
        self, b: tuple[int, int, int], procs: int, mapping: str = "pencil"
    ) -> int:
        """Owning processor of block ``b`` under ``mapping``."""
        check_positive("procs", procs)
        gi, gj, gk = self.grid_shape
        bi, bj, bk = b
        if mapping == "pencil":
            return (bj * gk + bk) % procs
        if mapping == "linear":
            return (bi * gj * gk + bj * gk + bk) % procs
        if mapping == "slab":
            return min(bi * procs // gi, procs - 1)
        raise ValueError(f"unknown mapping {mapping!r}; choose from {MAPPINGS}")

    def total_cells(self) -> int:
        """Total DP cells in the lattice."""
        d1, d2, d3 = self.dims
        return d1 * d2 * d3
