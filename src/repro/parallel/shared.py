"""Multiprocess shared-memory wavefront engine.

Parallel structure (the measured analogue of the paper's cluster algorithm):
each anti-diagonal plane is row-sliced across ``workers`` processes; one
barrier per plane enforces the wavefront dependence. All mutable state (the
four rotating plane buffers and the move cube) lives in
``multiprocessing.shared_memory`` blocks, so workers cooperate with zero
copying. The main process participates as worker 0.

Requires the ``fork`` start method (read-only inputs ride along with the
fork); on platforms without it the engine degrades to a serial sweep.

Determinism: every worker computes the same bounding box and the same
contiguous row split per plane (:func:`repro.parallel.partition.split_range`),
so writes are disjoint and the result is bit-identical to the serial engine.

Supervision (default on): a small extra shared-memory control block holds
per-worker heartbeats and the recovery verdict; every barrier wait has a
timeout; the main process detects dead or wedged workers at a broken
barrier, respawns them resuming at the current plane, and the survivors
replay it — see :mod:`repro.resilience.supervise`. Recovery preserves
bit-identical output because plane writes are disjoint and deterministic
and the wavefront reads only planes ``d-1..d-3``, which stay intact.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.wavefront import compute_plane_rows, plane_bounds
from repro.core.workspace import PlaneWorkspace
from repro.parallel.partition import active_workers, split_range
from repro.resilience import faults as _faults
from repro.resilience.errors import WorkerFailure
from repro.resilience.supervise import (
    RecoveryBlock,
    SupervisionPolicy,
    Supervisor,
    worker_plane_wait,
)
from repro.util.validation import check_positive, check_sequences


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def _attach(name: str, shape: tuple[int, ...], dtype) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    shm = shared_memory.SharedMemory(name=name)
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf), shm


def _sweep_planes(
    worker_id: int,
    workers: int,
    dims: tuple[int, int, int],
    planes: list[np.ndarray],
    move_cube: np.ndarray | None,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    rec: RecoveryBlock | None,
    advance: Callable[[int], int],
    start_plane: int = 0,
    log_planes: bool = True,
) -> None:
    """The plane loop shared by the dispatcher (worker 0) and the children.

    ``advance(d)`` performs the barrier rendezvous for plane ``d`` and
    returns the next plane to stand at — ``d + 1`` normally, or the
    recovery verdict's resume plane after a broken barrier. Planes at or
    below ``last_done`` are re-met but not recomputed, which is what makes
    replays idempotent. A mid-sweep replacement starts at ``start_plane``
    with ``log_planes=False`` (its per-plane log would not line up with
    plane 0).
    """
    n1, n2, n3 = dims
    observing = _obs.active()
    # Per-process kernel scratch, reused across all planes of the sweep
    # (each worker runs this loop exactly once, in its own process).
    ws = PlaneWorkspace(dims)
    busy = wait = 0.0
    cells = 0
    if observing:
        plane_cell_log: list[int] = []
        plane_dur_log: list[float] = []
    dmax = n1 + n2 + n3
    d = start_plane
    last_done = d - 1
    while d <= dmax:
        if d > last_done:
            _faults.maybe_inject("shared", worker_id, d, dmax)
            t0 = time.perf_counter() if observing else 0.0
            plane_cells = 0
            ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
            if ilo <= ihi:
                lo, hi = split_range(ilo, ihi, workers)[worker_id]
                if lo <= hi:
                    plane_cells = compute_plane_rows(
                        d,
                        lo,
                        hi,
                        planes[(d - 1) % 4],
                        planes[(d - 2) % 4],
                        planes[(d - 3) % 4],
                        planes[d % 4],
                        sab,
                        sac,
                        sbc,
                        g2,
                        dims,
                        move_cube=move_cube,
                        ws=ws,
                    )
                    cells += plane_cells
            last_done = d
            if observing:
                t1 = time.perf_counter()
                busy += t1 - t0
                plane_cell_log.append(plane_cells)
                plane_dur_log.append(t1 - t0)
        if rec is not None:
            rec.heartbeat(worker_id, d)
        t_wait = time.perf_counter() if observing else 0.0
        d = advance(d)
        if observing:
            wait += time.perf_counter() - t_wait
    if observing:
        if log_planes:
            _obs.record_planes("shared", plane_cell_log, plane_dur_log)
        _obs.record_worker("shared", worker_id, busy, wait, cells, dmax + 1)


def _worker_loop(
    worker_id: int,
    workers: int,
    dims: tuple[int, int, int],
    plane_names: list[str],
    move_name: str | None,
    ctrl_name: str | None,
    barrier,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    policy: SupervisionPolicy | None,
    resume_plane: int | None = None,
    faults_armed: bool = True,
) -> None:
    """Per-process plane loop. ``sab``/``sac``/``sbc`` arrive through fork
    copy-on-write; only planes, the move cube and the recovery block are
    shared for writing."""
    if not faults_armed:
        _faults.disarm_all()
    n1, n2, n3 = dims
    handles = []
    planes = []
    for name in plane_names:
        arr, shm = _attach(name, (n1 + 2, n2 + 2), np.float64)
        planes.append(arr)
        handles.append(shm)
    move_cube = None
    if move_name is not None:
        move_cube, shm = _attach(
            move_name, (n1 + 1, n2 + 1, n3 + 1), np.int8
        )
        handles.append(shm)
    rec = None
    if ctrl_name is not None:
        ctrl, shm = _attach(
            ctrl_name, (RecoveryBlock.slots(workers),), np.float64
        )
        handles.append(shm)
        rec = RecoveryBlock(ctrl, workers)
    try:
        if policy is None or rec is None:

            def advance(d: int) -> int:
                barrier.wait()
                return d + 1

        else:
            state = {"seen": rec.epoch}

            def advance(d: int) -> int:
                nxt, state["seen"] = worker_plane_wait(
                    barrier, rec, d, state["seen"], policy
                )
                return nxt

        # Forked workers inherit the tracer/metrics state the parent had at
        # spawn time, so observability flags are valid in children too.
        _sweep_planes(
            worker_id,
            workers,
            dims,
            planes,
            move_cube,
            sab,
            sac,
            sbc,
            g2,
            rec,
            advance,
            start_plane=0 if resume_plane is None else resume_plane,
            log_planes=resume_plane is None,
        )
        if _obs.active():
            _trace.flush()
    finally:
        for shm in handles:
            shm.close()


def _shared_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int,
    score_only: bool,
    supervise: bool = True,
    policy: SupervisionPolicy | None = None,
) -> tuple[float, np.ndarray | None, dict[str, Any]]:
    """Run the parallel sweep; returns (score, move_cube_copy, meta)."""
    check_sequences((sa, sb, sc), count=3)
    check_positive("workers", workers)
    if scheme.is_affine:
        raise ValueError("the shared engine implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    dims = (n1, n2, n3)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    if supervise and policy is None:
        policy = SupervisionPolicy.from_env()
    elif not supervise:
        policy = None

    # Workers beyond the widest plane's row count would receive an empty
    # ``(x, x-1)`` chunk on *every* plane — all barrier + IPC cost, no
    # work. Clamp before spawning: they are never forked, never sized
    # into the barrier, never waited on.
    active = active_workers(dims, workers)

    if active == 1 or not fork_available():
        # Serial fallback keeps behaviour identical with zero IPC.
        from repro.core.wavefront import wavefront_sweep

        res = wavefront_sweep(sa, sb, sc, scheme, score_only=score_only)
        meta = {"engine": "shared", "workers": 1, "fallback": "serial"}
        return res.score, res.move_cube, meta

    ctx = mp.get_context("fork")
    plane_bytes = (n1 + 2) * (n2 + 2) * 8
    shms: list[shared_memory.SharedMemory] = []
    procs: dict[int, mp.Process] = {}
    supervisor: Supervisor | None = None
    try:
        plane_shms = [
            shared_memory.SharedMemory(create=True, size=plane_bytes)
            for _ in range(4)
        ]
        shms.extend(plane_shms)
        planes = [
            np.ndarray((n1 + 2, n2 + 2), dtype=np.float64, buffer=s.buf)
            for s in plane_shms
        ]
        for p in planes:
            p.fill(NEG)
        move_shm = None
        move_cube = None
        if not score_only:
            move_shm = shared_memory.SharedMemory(
                create=True, size=max(1, (n1 + 1) * (n2 + 1) * (n3 + 1))
            )
            shms.append(move_shm)
            move_cube = np.ndarray(
                (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=move_shm.buf
            )
            move_cube.fill(0)
        ctrl_shm = None
        rec = None
        if policy is not None:
            ctrl_shm = shared_memory.SharedMemory(
                create=True, size=RecoveryBlock.slots(active) * 8
            )
            shms.append(ctrl_shm)
            ctrl = np.ndarray(
                (RecoveryBlock.slots(active),), dtype=np.float64,
                buffer=ctrl_shm.buf,
            )
            ctrl[:] = 0.0
            rec = RecoveryBlock(ctrl, active)

        barrier = ctx.Barrier(active)
        plane_names = [s.name for s in plane_shms]
        move_name = move_shm.name if move_shm is not None else None
        ctrl_name = ctrl_shm.name if ctrl_shm is not None else None

        def spawn(
            w: int, resume_plane: int | None, faults_armed: bool
        ) -> mp.Process:
            # Flush buffered trace lines so the fork doesn't duplicate
            # them into every child's buffer.
            _trace.flush()
            proc = ctx.Process(
                target=_worker_loop,
                args=(
                    w,
                    active,
                    dims,
                    plane_names,
                    move_name,
                    ctrl_name,
                    barrier,
                    sab,
                    sac,
                    sbc,
                    g2,
                    policy,
                    resume_plane,
                    faults_armed,
                ),
                daemon=True,
            )
            proc.start()
            return proc

        observing = _obs.active()
        t_sweep = time.perf_counter() if observing else 0.0
        for w in range(1, active):
            procs[w] = spawn(w, None, faults_armed=True)
        if policy is not None and rec is not None:
            supervisor = Supervisor(
                "shared",
                barrier=barrier,
                rec=rec,
                procs=procs,
                respawn=lambda w, d: spawn(w, d, faults_armed=False),
                policy=policy,
            )
            sup = supervisor

            def advance(d: int) -> int:
                sup.wait(d)
                return d + 1

        else:

            def advance(d: int) -> int:
                barrier.wait()
                return d + 1

        # The main process is worker 0 (and, when supervised, the
        # dispatcher that detects and recovers failures).
        _sweep_planes(
            0, active, dims, planes, move_cube, sab, sac, sbc, g2, rec,
            advance,
        )
        for proc in procs.values():
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - wedged at teardown
                proc.terminate()
                proc.join(timeout=5)
            if proc.exitcode != 0:
                raise WorkerFailure(
                    f"shared-memory worker exited with code {proc.exitcode}"
                )
        dmax = n1 + n2 + n3
        score = float(planes[dmax % 4][n1 + 1, n2 + 1])
        moves_copy = None if move_cube is None else move_cube.copy()
        if observing:
            # The shared engine computes the full (unmasked) cube.
            _obs.record_sweep(
                "shared",
                cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
                seconds=time.perf_counter() - t_sweep,
                peak_plane_bytes=4 * plane_bytes,
                move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
            )
        meta = {
            "engine": "shared",
            "workers": workers,
            "active_workers": active,
            "supervised": policy is not None,
        }
        if supervisor is not None and supervisor.failures:
            meta["recoveries"] = len(supervisor.failures)
        return score, moves_copy, meta
    finally:
        for proc in procs.values():
            if proc.is_alive():  # pragma: no cover - only on error paths
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
        for shm in shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def score3_shared(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    supervise: bool = True,
) -> float:
    """Optimal SP score via the multiprocess wavefront (O(n^2) memory)."""
    score, _moves, _meta = _shared_sweep(
        sa, sb, sc, scheme, workers, score_only=True, supervise=supervise
    )
    return score


def align3_shared(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    supervise: bool = True,
) -> Alignment3:
    """Optimal three-way alignment via the multiprocess wavefront."""
    score, move_cube, meta = _shared_sweep(
        sa, sb, sc, scheme, workers, score_only=False, supervise=supervise
    )
    assert move_cube is not None
    moves = traceback_moves(move_cube)
    cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
