"""Block-tiled multiprocess wavefront engine.

The measured counterpart of the coarse 3-D block decomposition TrioSeq
uses to keep GPU SMs saturated: instead of one barrier per anti-diagonal
plane (:mod:`repro.parallel.shared`), each worker owns a fixed row slab
of the cube and streams *plane bands* of it — 3-D blocks bounded by two
``i``-levels and two planes — syncing on per-worker readiness counters
only at band edges (:mod:`repro.parallel.blockwave`). For a cube with
``3n`` planes and bands of depth ``T`` that is ``2 * 3n / T`` waits per
worker instead of ``3n`` full barriers, and the planes inside a band run
with zero synchronisation.

Like ``shared`` this engine forks per call, shares the plane window and
move cube through ``multiprocessing.shared_memory``, and the main
process participates as worker 0 (doubling, when supervised, as the
:class:`~repro.parallel.blockwave.CounterSupervisor` that respawns dead
workers at block granularity — resuming from their published counter,
bit-identical, see ``docs/robustness.md``).

Unlike ``shared`` it accepts a :class:`~repro.core.tube.PruningTube`:
the per-plane live-row windows are computed once, pre-fork, every
incarnation of a worker (including respawned replacements) intersects
its slab with the same windows, and bands that fall entirely outside
the tube are skipped rather than scheduled.

Determinism: every cell is computed exactly once by the same kernel
call the serial engine makes, so scores and rows are bit-identical to
:func:`repro.core.wavefront.wavefront_sweep` — with or without a tube,
with or without mid-sweep recovery.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.tube import PruningTube
from repro.core.types import Alignment3, moves_to_columns
from repro.core.wavefront import _tube_row_ranges
from repro.core.workspace import PlaneWorkspace
from repro.parallel.blockwave import (
    BlockProgress,
    CounterSupervisor,
    sweep_blocks,
    worker_counter_wait,
)
from repro.parallel.partition import (
    band_depth,
    plane_bands,
    plane_window,
    row_slabs,
)
from repro.parallel.shared import _attach, fork_available
from repro.resilience import faults as _faults
from repro.resilience.errors import WorkerFailure
from repro.resilience.supervise import SupervisionPolicy
from repro.util.validation import check_positive, check_sequences


def _worker_loop(
    worker_id: int,
    slabs: list[tuple[int, int]],
    bands: list[tuple[int, int]],
    window: int,
    dims: tuple[int, int, int],
    plane_names: list[str],
    move_name: str | None,
    ctrl_name: str,
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    policy: SupervisionPolicy | None,
    tube: PruningTube | None,
    row_lo_by_d: np.ndarray | None,
    row_hi_by_d: np.ndarray | None,
    resume_plane: int | None = None,
    faults_armed: bool = True,
) -> None:
    """Child-process body: attach the shared window, stream the slab.

    Profile matrices, the tube and its live-row window arrays arrive
    through fork copy-on-write — a respawned replacement therefore
    replays with exactly the windows its predecessor used.
    """
    if not faults_armed:
        _faults.disarm_all()
    n1, n2, n3 = dims
    active = len(slabs)
    handles = []
    planes = []
    for name in plane_names:
        arr, shm = _attach(name, (n1 + 2, n2 + 2), np.float64)
        planes.append(arr)
        handles.append(shm)
    move_cube = None
    if move_name is not None:
        move_cube, shm = _attach(move_name, (n1 + 1, n2 + 1, n3 + 1), np.int8)
        handles.append(shm)
    ctrl, shm = _attach(ctrl_name, (2 * active,), np.float64)
    handles.append(shm)
    progress = BlockProgress(ctrl, active)
    try:
        cells = sweep_blocks(
            "blocks",
            worker_id,
            active,
            slabs[worker_id],
            bands,
            dims,
            planes,
            sab,
            sac,
            sbc,
            g2,
            move_cube,
            PlaneWorkspace(dims),
            progress,
            lambda w, target: worker_counter_wait(
                progress, w, target, policy
            ),
            tube=tube,
            row_lo_by_d=row_lo_by_d,
            row_hi_by_d=row_hi_by_d,
            start_plane=0 if resume_plane is None else resume_plane,
            record=resume_plane is None,
        )
        # Valid-cell tally for meta: exact on a clean run; after a
        # recovery the dead incarnation's share is conservatively lost
        # (it never reached this line), so the total is a lower bound.
        ctrl[active + worker_id] += float(cells)
        if _obs.active():
            _trace.flush()
    finally:
        for shm in handles:
            shm.close()


def _patient_wait(progress: BlockProgress, w: int, target: int) -> None:
    """Unsupervised dispatcher wait: sleep-backoff, no timeout, no exit
    (mirrors the unsupervised barrier engines' infinite waits)."""
    delay = 0.00005
    while progress.done(w) < target:
        time.sleep(delay)
        delay = min(delay * 2, 0.002)


def _blocks_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int,
    score_only: bool,
    supervise: bool = True,
    policy: SupervisionPolicy | None = None,
    band: int | None = None,
    tube: PruningTube | None = None,
) -> tuple[float, np.ndarray | None, dict[str, Any]]:
    """Run the block-tiled sweep; returns (score, move_cube_copy, meta)."""
    check_sequences((sa, sb, sc), count=3)
    check_positive("workers", workers)
    if band is not None:
        check_positive("band", band)
    if scheme.is_affine:
        raise ValueError("the blocks engine implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    dims = (n1, n2, n3)
    dmax = n1 + n2 + n3
    if tube is not None and tube.shape != (n1 + 1, n2 + 1, n3 + 1):
        raise ValueError(f"tube shape {tube.shape} does not match cube")
    slabs = row_slabs(n1, workers)
    active = len(slabs)
    if supervise and policy is None:
        policy = SupervisionPolicy.from_env()
    elif not supervise:
        policy = None

    if active == 1 or not fork_available():
        from repro.core.wavefront import wavefront_sweep

        res = wavefront_sweep(
            sa, sb, sc, scheme, score_only=score_only, tube=tube
        )
        meta = {
            "engine": "blocks",
            "workers": workers,
            "active_workers": 1,
            "fallback": "serial",
            "cells": res.cells_computed,
        }
        return res.score, res.move_cube, meta

    depth = band if band is not None else band_depth(dmax, active)
    bands = plane_bands(dmax, depth)
    window = min(plane_window(depth), dmax + 4)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    row_lo_by_d = row_hi_by_d = None
    if tube is not None:
        # Computed once in the parent: every incarnation of every worker
        # (first spawn and respawned replacements alike) slices the same
        # arrays, so replay reuses the per-plane live-row windows.
        row_lo_by_d, row_hi_by_d = _tube_row_ranges(tube, dmax)

    ctx = mp.get_context("fork")
    plane_bytes = (n1 + 2) * (n2 + 2) * 8
    shms: list[shared_memory.SharedMemory] = []
    procs: dict[int, mp.Process] = {}
    supervisor: CounterSupervisor | None = None
    try:
        plane_shms = [
            shared_memory.SharedMemory(create=True, size=plane_bytes)
            for _ in range(window)
        ]
        shms.extend(plane_shms)
        planes = [
            np.ndarray((n1 + 2, n2 + 2), dtype=np.float64, buffer=s.buf)
            for s in plane_shms
        ]
        for p in planes:
            p.fill(NEG)
        move_shm = None
        move_cube = None
        if not score_only:
            move_shm = shared_memory.SharedMemory(
                create=True, size=max(1, (n1 + 1) * (n2 + 1) * (n3 + 1))
            )
            shms.append(move_shm)
            move_cube = np.ndarray(
                (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=move_shm.buf
            )
            move_cube.fill(0)
        ctrl_shm = shared_memory.SharedMemory(
            create=True, size=2 * active * 8
        )
        shms.append(ctrl_shm)
        ctrl = np.ndarray((2 * active,), dtype=np.float64, buffer=ctrl_shm.buf)
        progress = BlockProgress(ctrl, active)
        progress.reset()
        ctrl[active:] = 0.0

        plane_names = [s.name for s in plane_shms]
        move_name = move_shm.name if move_shm is not None else None

        def spawn(
            w: int, resume_plane: int | None, faults_armed: bool
        ) -> mp.Process:
            _trace.flush()
            proc = ctx.Process(
                target=_worker_loop,
                args=(
                    w,
                    slabs,
                    bands,
                    window,
                    dims,
                    plane_names,
                    move_name,
                    ctrl_shm.name,
                    sab,
                    sac,
                    sbc,
                    g2,
                    policy,
                    tube,
                    row_lo_by_d,
                    row_hi_by_d,
                    resume_plane,
                    faults_armed,
                ),
                daemon=True,
            )
            proc.start()
            return proc

        observing = _obs.active()
        t_sweep = time.perf_counter() if observing else 0.0
        for w in range(1, active):
            procs[w] = spawn(w, None, faults_armed=True)
        if policy is not None:
            supervisor = CounterSupervisor(
                "blocks",
                progress,
                procs,
                respawn=lambda w, d: spawn(w, d, faults_armed=False),
                policy=policy,
                dmax=dmax,
            )
            wait = supervisor.wait_for
        else:
            wait = lambda w, target: _patient_wait(progress, w, target)  # noqa: E731

        cells0 = sweep_blocks(
            "blocks",
            0,
            active,
            slabs[0],
            bands,
            dims,
            planes,
            sab,
            sac,
            sbc,
            g2,
            move_cube,
            PlaneWorkspace(dims),
            progress,
            wait,
            tube=tube,
            row_lo_by_d=row_lo_by_d,
            row_hi_by_d=row_hi_by_d,
        )
        if supervisor is not None:
            supervisor.wait_all()
        else:
            for w in range(1, active):
                _patient_wait(progress, w, dmax)
        for proc in procs.values():
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - wedged at teardown
                proc.terminate()
                proc.join(timeout=5)
            if proc.exitcode != 0:
                raise WorkerFailure(
                    f"blocks worker exited with code {proc.exitcode}"
                )
        score = float(planes[dmax % window][n1 + 1, n2 + 1])
        moves_copy = None if move_cube is None else move_cube.copy()
        cells = int(cells0 + float(ctrl[active:].sum()))
        if observing:
            _obs.record_sweep(
                "blocks",
                cells=cells,
                seconds=time.perf_counter() - t_sweep,
                peak_plane_bytes=window * plane_bytes,
                move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
            )
        meta = {
            "engine": "blocks",
            "workers": workers,
            "active_workers": active,
            "band": depth,
            "window": window,
            "supervised": policy is not None,
            "cells": cells,
        }
        if supervisor is not None and supervisor.failures:
            meta["recoveries"] = len(supervisor.failures)
        return score, moves_copy, meta
    finally:
        for proc in procs.values():
            if proc.is_alive():  # pragma: no cover - only on error paths
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
        for shm in shms:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def score3_blocks(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    supervise: bool = True,
    band: int | None = None,
    tube: PruningTube | None = None,
) -> float:
    """Optimal SP score via the block-tiled wavefront (O(n^2) memory)."""
    score, _moves, _meta = _blocks_sweep(
        sa,
        sb,
        sc,
        scheme,
        workers,
        score_only=True,
        supervise=supervise,
        band=band,
        tube=tube,
    )
    return score


def align3_blocks(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    supervise: bool = True,
    band: int | None = None,
    tube: PruningTube | None = None,
) -> Alignment3:
    """Optimal three-way alignment via the block-tiled wavefront."""
    score, move_cube, meta = _blocks_sweep(
        sa,
        sb,
        sc,
        scheme,
        workers,
        score_only=False,
        supervise=supervise,
        band=band,
        tube=tube,
    )
    if tube is not None and score <= NEG / 2:
        raise RuntimeError(
            "terminal cell unreachable (over-aggressive pruning tube?)"
        )
    assert move_cube is not None
    moves = traceback_moves(move_cube)
    cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
