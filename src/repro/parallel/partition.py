"""Work-partitioning utilities shared by the parallel engines and the
cluster simulator."""

from __future__ import annotations

from repro.util.validation import check_positive


def split_range(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split the inclusive range ``[lo, hi]`` into ``parts`` contiguous
    inclusive chunks whose sizes differ by at most one.

    Empty chunks (``(x, x-1)``) are emitted when the range is shorter than
    ``parts`` so that every worker index always receives a (possibly empty)
    assignment.

    >>> split_range(0, 9, 3)
    [(0, 3), (4, 6), (7, 9)]
    """
    check_positive("parts", parts)
    n = hi - lo + 1
    if n <= 0:
        return [(lo, lo - 1)] * parts
    base, extra = divmod(n, parts)
    out = []
    start = lo
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size - 1))
        start += size
    return out


def split_cyclic(count: int, parts: int) -> list[list[int]]:
    """Deal indices ``0..count-1`` to ``parts`` owners round-robin.

    >>> split_cyclic(5, 2)
    [[0, 2, 4], [1, 3]]
    """
    check_positive("parts", parts)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [list(range(p, count, parts)) for p in range(parts)]


def balanced_blocks(total: int, block: int) -> list[tuple[int, int]]:
    """Chop ``0..total-1`` into inclusive blocks of at most ``block``.

    >>> balanced_blocks(10, 4)
    [(0, 3), (4, 7), (8, 9)]
    """
    check_positive("block", block)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    return [
        (start, min(start + block - 1, total - 1))
        for start in range(0, total, block)
    ]
