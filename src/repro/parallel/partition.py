"""Work-partitioning utilities shared by the parallel engines and the
cluster simulator."""

from __future__ import annotations

from repro.util.validation import check_positive


def split_range(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split the inclusive range ``[lo, hi]`` into ``parts`` contiguous
    inclusive chunks whose sizes differ by at most one.

    Empty chunks (``(x, x-1)``) are emitted when the range is shorter than
    ``parts`` so that every worker index always receives a (possibly empty)
    assignment.

    >>> split_range(0, 9, 3)
    [(0, 3), (4, 6), (7, 9)]
    """
    check_positive("parts", parts)
    n = hi - lo + 1
    if n <= 0:
        return [(lo, lo - 1)] * parts
    base, extra = divmod(n, parts)
    out = []
    start = lo
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size - 1))
        start += size
    return out


def split_cyclic(count: int, parts: int) -> list[list[int]]:
    """Deal indices ``0..count-1`` to ``parts`` owners round-robin.

    >>> split_cyclic(5, 2)
    [[0, 2, 4], [1, 3]]
    """
    check_positive("parts", parts)
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [list(range(p, count, parts)) for p in range(parts)]


def balanced_blocks(total: int, block: int) -> list[tuple[int, int]]:
    """Chop ``0..total-1`` into inclusive blocks of at most ``block``.

    >>> balanced_blocks(10, 4)
    [(0, 3), (4, 7), (8, 9)]
    """
    check_positive("block", block)
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    return [
        (start, min(start + block - 1, total - 1))
        for start in range(0, total, block)
    ]


# ---------------------------------------------------------------------------
# Block-grid geometry for the block-tiled wavefront engines
# ---------------------------------------------------------------------------
#
# The block-tiled engines (:mod:`repro.parallel.blocks`, the refactored
# pool and thread engines) retile the DP cube into genuine 3-D blocks:
# a fixed contiguous *row slab* per worker crossed with *plane bands*
# (runs of consecutive anti-diagonal planes). Each block is the cube
# region ``{(i, j, k) : i in slab, i + j + k in band}`` — bounded by two
# planes and two i-levels — and depends only on the block below it
# (rows ``slab.lo - 1``) and its own slab's previous band, the
# (slab x band) projection of the <= 7 predecessor blocks
# :class:`repro.cluster.blockgrid.BlockGrid` models (the plane kernel
# reads rows ``i-1`` and ``i`` only, so the cross-worker dependency is
# one-directional: downward).


def max_plane_rows(dims: tuple[int, int, int]) -> int:
    """Row count of the widest anti-diagonal plane of the cube.

    Plane ``d`` spans rows ``max(0, d - n2 - n3) .. min(n1, d)``; the
    widest plane has ``min(n1, n2 + n3) + 1`` rows — the most workers a
    per-plane row split can ever feed.
    """
    n1, n2, n3 = dims
    return min(n1, n2 + n3) + 1


def active_workers(dims: tuple[int, int, int], workers: int) -> int:
    """Workers that ever receive a non-empty per-plane row slice.

    ``split_range`` pads with empty ``(x, x-1)`` chunks when a plane has
    fewer rows than workers; a worker beyond :func:`max_plane_rows` gets
    an empty chunk on *every* plane and would only pay barrier + IPC
    cost. Engines clamp their worker count to this.
    """
    check_positive("workers", workers)
    return max(1, min(workers, max_plane_rows(dims)))


def row_slabs(n1: int, workers: int) -> list[tuple[int, int]]:
    """Fixed contiguous row slabs for the block-tiled engines.

    One inclusive ``(lo, hi)`` slab per *active* worker over rows
    ``0..n1`` — never empty: the result has ``min(workers, n1 + 1)``
    entries, so callers spawn exactly as many workers as have work.
    Every row carries the same total cell count across the whole sweep
    (``(n2+1) * (n3+1)`` cells), so equal slabs are load-balanced even
    though individual planes are not.
    """
    check_positive("workers", workers)
    if n1 < 0:
        raise ValueError(f"n1 must be >= 0, got {n1}")
    return split_range(0, n1, min(workers, n1 + 1))


def plane_bands(dmax: int, depth: int) -> list[tuple[int, int]]:
    """Split planes ``0..dmax`` into inclusive bands of at most ``depth``.

    A (slab x band) block streams ``depth`` planes between
    synchronisations instead of syncing every plane.
    """
    if dmax < 0:
        raise ValueError(f"dmax must be >= 0, got {dmax}")
    return balanced_blocks(dmax + 1, depth)


def plane_window(depth: int) -> int:
    """Plane buffers required to stream bands of ``depth`` planes.

    The kernel reads three planes back, so writing plane ``d`` destroys
    plane ``d - W`` of a ``W``-deep rotating window, which the worker
    above may still read while computing planes ``d - W + 1 .. d - W + 3``.
    A worker may therefore only start a band ending at plane ``e`` once
    its upper neighbour has finished plane ``e - W + 3``. With
    ``W = 2 * depth + 3`` adjacent workers run a full band apart without
    blocking — the minimum window that pipelines instead of alternating
    (``W = depth + 3`` already deadlock-free, but lock-step).
    """
    check_positive("depth", depth)
    return 2 * depth + 3


def band_depth(dmax: int, workers: int, cap: int = 16) -> int:
    """Default band depth: ~2 bands in flight per worker, capped.

    Deep bands amortise synchronisation; shallow bands fill and drain
    the worker pipeline faster. ``(dmax + 1) // (2 * workers)`` keeps at
    least two bands per worker so the pipeline stays full, the cap
    bounds the plane-window memory (``(2 * cap + 3)`` plane buffers).
    """
    check_positive("workers", workers)
    if dmax < 0:
        raise ValueError(f"dmax must be >= 0, got {dmax}")
    return max(4, min(cap, (dmax + 1) // (2 * workers) or 1))


def block_predecessors(
    w: int, b: int, n_slabs: int, n_bands: int
) -> list[tuple[int, int]]:
    """Flow predecessors of block ``(w, b)`` in the (slab x band) grid.

    The kernel's reads are downward-only in rows (rows ``i-1`` and ``i``),
    so a block waits on at most two earlier blocks: the same slab's
    previous band (its own plane history) and the band of the slab
    below it (the boundary row). This is the (slab x band) projection of
    the <= 7-predecessor dependency structure
    :meth:`repro.cluster.blockgrid.BlockGrid.dependencies` models for
    general 3-D tiles.
    """
    for name, val, hi in (("w", w, n_slabs), ("b", b, n_bands)):
        if not 0 <= val < hi:
            raise ValueError(f"{name}={val} outside grid ({n_slabs}x{n_bands})")
    deps = []
    if b > 0:
        deps.append((w, b - 1))
    if w > 0:
        deps.append((w - 1, b))
    return deps
