"""Thread-pool wavefront engine.

Same plane-sliced structure as :mod:`repro.parallel.shared` but with
threads: workers share the process address space, so no shared-memory
plumbing is needed — only a ``threading.Barrier`` per plane. NumPy's
element-wise kernels release the GIL for large arrays, so modest speedup is
possible on big planes; for small planes the GIL serialises the work and
this engine is mostly a measurement baseline for experiment F3 (it shows
*why* the paper's algorithm needs processes/ranks rather than threads in a
GIL runtime).

Fault tolerance here is fail-fast rather than recover: a thread cannot be
killed and respawned the way a process can, so a crashed (or injected-
crash) worker aborts the barrier and the sweep raises a typed
:class:`~repro.resilience.errors.WorkerFailure` carrying per-worker
failure records — it never wedges at the barrier, because every wait has
a timeout. Recovery belongs to the process engines (``shared``, ``pool``).
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.wavefront import compute_plane_rows, plane_bounds
from repro.core.workspace import PlaneWorkspace
from repro.parallel.partition import split_range
from repro.resilience import faults as _faults
from repro.resilience.errors import FailureRecord, WorkerFailure
from repro.resilience.supervise import SupervisionPolicy
from repro.util.validation import check_positive, check_sequences


class _InjectedCrash(RuntimeError):
    """A ``worker_crash`` fault enacted in a thread (threads cannot
    ``os._exit`` without taking the whole process down)."""


def _thread_inject(worker_id: int, plane: int, dmax: int) -> None:
    if not _faults.enabled:
        return
    if worker_id != 0:
        spec = _faults.fire(
            "worker_crash",
            engine="threads",
            worker=worker_id,
            plane=plane,
            dmax=dmax,
        )
        if spec is not None:
            raise _InjectedCrash(
                f"injected crash in thread {worker_id} at plane {plane}"
            )
    spec = _faults.fire(
        "straggler", engine="threads", worker=worker_id, plane=plane, dmax=dmax
    )
    if spec is not None:
        time.sleep(spec.delay)


def _threaded_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int,
    score_only: bool,
) -> tuple[float, np.ndarray | None, dict[str, Any]]:
    check_sequences((sa, sb, sc), count=3)
    check_positive("workers", workers)
    if scheme.is_affine:
        raise ValueError("the threads engine implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    dims = (n1, n2, n3)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap

    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(4)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    dmax = n1 + n2 + n3
    barrier = threading.Barrier(workers)
    wait_timeout = SupervisionPolicy.from_env().worker_timeout
    errors: list[tuple[int, BaseException]] = []

    observing = _obs.active()

    def loop(worker_id: int) -> None:
        try:
            # Workspaces are per-worker: the kernel scratch is not
            # thread-safe, but each worker reuses its own across planes.
            ws = PlaneWorkspace(dims)
            busy = wait = 0.0
            cells = 0
            if observing:
                plane_cell_log: list[int] = []
                plane_dur_log: list[float] = []
            for d in range(dmax + 1):
                _thread_inject(worker_id, d, dmax)
                t0 = time.perf_counter() if observing else 0.0
                plane_cells = 0
                ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
                if ilo <= ihi:
                    lo, hi = split_range(ilo, ihi, workers)[worker_id]
                    if lo <= hi:
                        plane_cells = compute_plane_rows(
                            d,
                            lo,
                            hi,
                            planes[(d - 1) % 4],
                            planes[(d - 2) % 4],
                            planes[(d - 3) % 4],
                            planes[d % 4],
                            sab,
                            sac,
                            sbc,
                            g2,
                            dims,
                            move_cube=move_cube,
                            ws=ws,
                        )
                        cells += plane_cells
                if observing:
                    t1 = time.perf_counter()
                    busy += t1 - t0
                    plane_cell_log.append(plane_cells)
                    plane_dur_log.append(t1 - t0)
                # Timeout only fires if a peer wedged without raising
                # (a raising peer aborts the barrier, which surfaces here
                # immediately as BrokenBarrierError).
                barrier.wait(timeout=wait_timeout)
                if observing:
                    wait += time.perf_counter() - t1
            if observing:
                _obs.record_planes("threads", plane_cell_log, plane_dur_log)
                _obs.record_worker(
                    "threads", worker_id, busy, wait, cells, dmax + 1
                )
        except BaseException as exc:
            # Recorded and classified after the join; aborting the
            # barrier releases every peer immediately.
            errors.append((worker_id, exc))
            barrier.abort()

    t_sweep = time.perf_counter() if observing else 0.0
    threads = [
        threading.Thread(target=loop, args=(w,), daemon=True)
        for w in range(1, workers)
    ]
    for t in threads:
        t.start()
    loop(0)
    for t in threads:
        t.join(timeout=10)
    if errors:
        # A genuine bug keeps its original type; injected crashes and the
        # collateral broken-barrier waits become one typed WorkerFailure.
        fatal = [
            (w, e)
            for w, e in errors
            if not isinstance(e, threading.BrokenBarrierError)
        ]
        for w, exc in fatal:
            if not isinstance(exc, _InjectedCrash):
                raise exc
        records = [
            FailureRecord(
                engine="threads", worker=w, reason=str(exc), respawned=False
            )
            for w, exc in (fatal or errors)
        ]
        for r in records:
            _obs.record_failure("threads", r.worker, r.plane, r.reason)
        raise WorkerFailure(
            f"threads engine lost {len(records)} worker(s)", records
        )

    if observing:
        _obs.record_sweep(
            "threads",
            cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
            seconds=time.perf_counter() - t_sweep,
            peak_plane_bytes=sum(p.nbytes for p in planes),
            move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
        )
    score = float(planes[dmax % 4][n1 + 1, n2 + 1])
    meta = {"engine": "threads", "workers": workers}
    return score, move_cube, meta


def score3_threads(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
) -> float:
    """Optimal SP score via the thread-pool wavefront."""
    score, _moves, _meta = _threaded_sweep(
        sa, sb, sc, scheme, workers, score_only=True
    )
    return score


def align3_threads(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
) -> Alignment3:
    """Optimal three-way alignment via the thread-pool wavefront."""
    score, move_cube, meta = _threaded_sweep(
        sa, sb, sc, scheme, workers, score_only=False
    )
    assert move_cube is not None
    moves = traceback_moves(move_cube)
    cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
