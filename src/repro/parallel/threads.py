"""Thread-pool wavefront engine.

Same block-tiled structure as :mod:`repro.parallel.blocks` but with
threads: workers share the process address space, so no shared-memory
plumbing is needed — each worker owns a fixed row slab and streams plane
bands, syncing on a plain per-worker counter list (GIL-atomic 8-byte
stores) instead of a per-plane barrier. NumPy's element-wise kernels
release the GIL for large arrays, so modest speedup is possible on big
planes; for small planes the GIL serialises the work and this engine is
mostly a measurement baseline for experiment F3 (it shows *why* the
paper's algorithm needs processes/ranks rather than threads in a GIL
runtime).

Fault tolerance here is fail-fast rather than recover: a thread cannot
be killed and respawned the way a process can, so a crashed (or
injected-crash) worker sets a shared stop flag, every counter wait
checks it, and the sweep raises a typed
:class:`~repro.resilience.errors.WorkerFailure` carrying per-worker
failure records — it never wedges on a frozen counter, because every
wait has a timeout. Recovery belongs to the process engines (``shared``,
``blocks``, ``pool``).
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.workspace import PlaneWorkspace
from repro.parallel.blockwave import sweep_blocks
from repro.parallel.partition import (
    band_depth,
    plane_bands,
    plane_window,
    row_slabs,
)
from repro.resilience import faults as _faults
from repro.resilience.errors import FailureRecord, WorkerFailure
from repro.resilience.supervise import SupervisionPolicy
from repro.util.validation import check_positive, check_sequences

_SLEEP_MIN = 0.00005
_SLEEP_MAX = 0.002


class _InjectedCrash(RuntimeError):
    """A ``worker_crash`` fault enacted in a thread (threads cannot
    ``os._exit`` without taking the whole process down)."""


class _SweepAborted(RuntimeError):
    """Collateral: a peer already failed and set the stop flag."""


class _WaitTimeout(RuntimeError):
    """A counter wait outlasted the policy timeout (wedged peer)."""


def _thread_inject(engine: str, worker_id: int, plane: int, dmax: int) -> None:
    """Raising fault hook for :func:`sweep_blocks` (see its ``inject``
    parameter): same specs as the process engines, thread-safe delivery."""
    if not _faults.enabled:
        return
    if worker_id != 0:
        spec = _faults.fire(
            "worker_crash",
            engine="threads",
            worker=worker_id,
            plane=plane,
            dmax=dmax,
        )
        if spec is not None:
            raise _InjectedCrash(
                f"injected crash in thread {worker_id} at plane {plane}"
            )
    spec = _faults.fire(
        "straggler", engine="threads", worker=worker_id, plane=plane, dmax=dmax
    )
    if spec is not None:
        time.sleep(spec.delay)


class _ListProgress:
    """Per-worker counters as a plain list — GIL stores are atomic and
    every thread sees them, no shared memory required."""

    def __init__(self, workers: int):
        self._done = [-1] * workers
        self.workers = workers

    def done(self, w: int) -> int:
        return self._done[w]

    def publish(self, w: int, plane: int) -> None:
        self._done[w] = plane


def _threaded_sweep(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int,
    score_only: bool,
    band: int | None = None,
) -> tuple[float, np.ndarray | None, dict[str, Any]]:
    check_sequences((sa, sb, sc), count=3)
    check_positive("workers", workers)
    if band is not None:
        check_positive("band", band)
    if scheme.is_affine:
        raise ValueError("the threads engine implements the linear gap model")
    n1, n2, n3 = len(sa), len(sb), len(sc)
    dims = (n1, n2, n3)
    sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
    g2 = 2.0 * scheme.gap
    dmax = n1 + n2 + n3

    slabs = row_slabs(n1, workers)
    active = len(slabs)
    depth = band if band is not None else band_depth(dmax, active)
    bands = plane_bands(dmax, depth)
    window = min(plane_window(depth), dmax + 4)
    planes = [np.full((n1 + 2, n2 + 2), NEG) for _ in range(window)]
    move_cube = (
        None
        if score_only
        else np.zeros((n1 + 1, n2 + 1, n3 + 1), dtype=np.int8)
    )
    wait_timeout = SupervisionPolicy.from_env().worker_timeout
    progress = _ListProgress(active)
    stop = threading.Event()
    errors: list[tuple[int, BaseException]] = []

    def wait_for(w: int, target: int) -> None:
        deadline = time.perf_counter() + wait_timeout
        delay = _SLEEP_MIN
        while progress.done(w) < target:
            if stop.is_set():
                raise _SweepAborted(f"peer failure while waiting on {w}")
            if time.perf_counter() > deadline:
                raise _WaitTimeout(
                    f"counter wait on worker {w} exceeded {wait_timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 2, _SLEEP_MAX)

    observing = _obs.active()

    def loop(worker_id: int) -> None:
        try:
            # Workspaces are per-worker: the kernel scratch is not
            # thread-safe, but each worker reuses its own across bands.
            sweep_blocks(
                "threads",
                worker_id,
                active,
                slabs[worker_id],
                bands,
                dims,
                planes,
                sab,
                sac,
                sbc,
                g2,
                move_cube,
                PlaneWorkspace(dims),
                progress,
                wait_for,
                inject=_thread_inject,
            )
        except BaseException as exc:
            # Recorded and classified after the join; the stop flag
            # releases every waiting peer immediately.
            errors.append((worker_id, exc))
            stop.set()

    t_sweep = time.perf_counter() if observing else 0.0
    threads = [
        threading.Thread(target=loop, args=(w,), daemon=True)
        for w in range(1, active)
    ]
    for t in threads:
        t.start()
    loop(0)
    # Worker 0 owns the bottom slab and never waits on anyone above it
    # finishing the *last* band, so rendezvous on the counters (with the
    # stop flag breaking the wait if a peer died).
    try:
        for w in range(1, active):
            wait_for(w, dmax)
    except (_SweepAborted, _WaitTimeout):
        pass
    for t in threads:
        t.join(timeout=10)
    if errors:
        # A genuine bug keeps its original type; injected crashes and the
        # collateral stop-flag aborts become one typed WorkerFailure.
        fatal = [
            (w, e)
            for w, e in errors
            if not isinstance(e, (_SweepAborted, _WaitTimeout))
        ]
        for w, exc in fatal:
            if not isinstance(exc, _InjectedCrash):
                raise exc
        records = [
            FailureRecord(
                engine="threads", worker=w, reason=str(exc), respawned=False
            )
            for w, exc in (fatal or errors)
        ]
        for r in records:
            _obs.record_failure("threads", r.worker, r.plane, r.reason)
        raise WorkerFailure(
            f"threads engine lost {len(records)} worker(s)", records
        )

    if observing:
        _obs.record_sweep(
            "threads",
            cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
            seconds=time.perf_counter() - t_sweep,
            peak_plane_bytes=sum(p.nbytes for p in planes),
            move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
        )
    score = float(planes[dmax % window][n1 + 1, n2 + 1])
    meta = {
        "engine": "threads",
        "workers": workers,
        "active_workers": active,
        "band": depth,
        "window": window,
    }
    return score, move_cube, meta


def score3_threads(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    band: int | None = None,
) -> float:
    """Optimal SP score via the thread-pool wavefront."""
    score, _moves, _meta = _threaded_sweep(
        sa, sb, sc, scheme, workers, score_only=True, band=band
    )
    return score


def align3_threads(
    sa: str,
    sb: str,
    sc: str,
    scheme: ScoringScheme,
    workers: int = 2,
    band: int | None = None,
) -> Alignment3:
    """Optimal three-way alignment via the thread-pool wavefront."""
    score, move_cube, meta = _threaded_sweep(
        sa, sb, sc, scheme, workers, score_only=False, band=band
    )
    assert move_cube is not None
    moves = traceback_moves(move_cube)
    cols = moves_to_columns(moves, sa, sb, sc)
    rows = tuple("".join(col[r] for col in cols) for r in range(3))
    return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
