"""Shared-memory parallel wavefront engines.

The anti-diagonal plane is the natural parallel unit: all cells on plane
``i + j + k = d`` are independent given the previous three planes. Two
synchronisation regimes are provided:

* **per-plane barrier** (:mod:`repro.parallel.shared`) — each plane's
  rows are re-sliced across workers with one barrier per plane; the
  direct, measured counterpart of the paper's cluster algorithm;
* **block-tiled counters** (:mod:`repro.parallel.blocks`,
  :class:`~repro.parallel.executor.WavefrontPool`,
  :mod:`repro.parallel.threads`) — each worker owns a fixed row slab and
  streams *plane bands* (3-D blocks) through a deep rotating plane
  window, syncing on per-worker readiness counters only at band edges
  (:mod:`repro.parallel.blockwave`). Same cells, same kernel, same
  bit-identical output — a small fraction of the synchronisation.

Executors:

* :mod:`repro.parallel.shared` — per-call ``multiprocessing`` workers
  over ``SharedMemory`` buffers, one barrier per plane;
* :mod:`repro.parallel.blocks` — per-call block-tiled workers
  (counter-synchronised, tube-aware);
* :mod:`repro.parallel.executor` — :class:`WavefrontPool`, the
  persistent block-tiled pool for repeated small jobs;
* :mod:`repro.parallel.threads` — a block-tiled thread pool: mostly a
  GIL demonstration, though NumPy kernels release the GIL enough for
  modest gains on large planes.

Partitioning helpers (row slabs, plane bands, the block dependency
grid) live in :mod:`repro.parallel.partition`.
"""

from repro.parallel.partition import (
    split_range,
    split_cyclic,
    balanced_blocks,
    active_workers,
    band_depth,
    block_predecessors,
    max_plane_rows,
    plane_bands,
    plane_window,
    row_slabs,
)
from repro.parallel.blocks import align3_blocks, score3_blocks
from repro.parallel.shared import align3_shared, score3_shared
from repro.parallel.threads import align3_threads, score3_threads
from repro.parallel.executor import WavefrontPool

__all__ = [
    "split_range",
    "split_cyclic",
    "balanced_blocks",
    "active_workers",
    "band_depth",
    "block_predecessors",
    "max_plane_rows",
    "plane_bands",
    "plane_window",
    "row_slabs",
    "align3_blocks",
    "score3_blocks",
    "align3_shared",
    "score3_shared",
    "align3_threads",
    "score3_threads",
    "WavefrontPool",
]
