"""Shared-memory parallel wavefront engines.

The anti-diagonal plane is the natural parallel unit: all cells on plane
``i + j + k = d`` are independent given the previous three planes, so each
plane's rows are sliced across workers with one barrier per plane. Two
executors are provided:

* :mod:`repro.parallel.shared` — ``multiprocessing`` workers over
  ``SharedMemory`` buffers: true multi-core speedup (the measured
  counterpart of the cluster simulation's modelled speedup);
* :mod:`repro.parallel.threads` — a thread pool: mostly a GIL
  demonstration, though NumPy kernels release the GIL enough for modest
  gains on large planes.

Partitioning helpers live in :mod:`repro.parallel.partition`.
"""

from repro.parallel.partition import (
    split_range,
    split_cyclic,
    balanced_blocks,
)
from repro.parallel.shared import align3_shared, score3_shared
from repro.parallel.threads import align3_threads, score3_threads
from repro.parallel.executor import WavefrontPool

__all__ = [
    "split_range",
    "split_cyclic",
    "balanced_blocks",
    "align3_shared",
    "score3_shared",
    "align3_threads",
    "score3_threads",
    "WavefrontPool",
]
