"""Persistent multiprocess worker pool for the wavefront engine.

:mod:`repro.parallel.shared` spawns its workers per call, which costs tens
of milliseconds — more than the whole sweep below n ≈ 100 (the F3 caveat
in ``EXPERIMENTS.md``). :class:`WavefrontPool` keeps the workers, barriers
and shared buffers alive across calls, the way a long-running MPI rank set
would, so repeated alignments pay only the per-plane barrier cost.

Protocol
--------
The pool allocates capacity-sized shared buffers once (four plane buffers,
three profile-matrix buffers, a move cube and a small control block). Per
job the main process writes the job descriptor (dims, gap, score-only
flag) and the profile matrices, resets the planes, and everyone meets at
the start barrier; workers then run the standard one-barrier-per-plane
sweep and return to the start barrier for the next job. Shutdown is a job
with the shutdown flag set.

Supervision (default on) makes the pool survive worker failure: the
control block carries per-worker heartbeats and a recovery-verdict slot,
every barrier wait has a timeout, and the dispatcher responds to a broken
barrier by respawning dead (or wedged) workers and replaying the current
plane — the wavefront only reads planes ``d-1..d-3``, which are intact in
the shared buffers, so replay is idempotent and the output stays
bit-identical to the serial engine. See :mod:`repro.resilience.supervise`
and ``docs/robustness.md``.

Determinism matches :mod:`repro.parallel.shared`: identical row splits,
identical argmax tie-breaking, bit-identical output to the serial engine.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.wavefront import compute_plane_rows, plane_bounds
from repro.core.workspace import PlaneWorkspace
from repro.parallel.partition import split_range
from repro.parallel.shared import fork_available
from repro.resilience import faults as _faults
from repro.resilience.supervise import (
    RecoveryBlock,
    SupervisionPolicy,
    Supervisor,
    worker_idle_wait,
    worker_plane_wait,
)
from repro.util.validation import check_positive, check_sequences

# Control-block slots (float64 each). The recovery block (epoch, resume,
# one heartbeat per worker) sits at _CTRL_REC_BASE.
_CTRL_SHUTDOWN = 0
_CTRL_N1 = 1
_CTRL_N2 = 2
_CTRL_N3 = 3
_CTRL_G2 = 4
_CTRL_SCORE_ONLY = 5
_CTRL_REC_BASE = 6


def _ctrl_slots(workers: int) -> int:
    return _CTRL_REC_BASE + RecoveryBlock.slots(workers)


def _pool_worker(
    worker_id: int,
    workers: int,
    capacity: tuple[int, int, int],
    names: dict[str, str],
    start_barrier,
    plane_barrier,
    policy: SupervisionPolicy | None,
    resume_plane: int | None = None,
    faults_armed: bool = True,
) -> None:
    """Worker main loop: wait for a job, sweep, repeat until shutdown.

    A respawned replacement arrives with ``resume_plane`` set (skip the
    job-start barrier, re-enter the current sweep there) and
    ``faults_armed=False`` (a replayed plane must not re-trigger the
    injected crash that killed its predecessor).
    """
    if not faults_armed:
        _faults.disarm_all()
    shms = {key: shared_memory.SharedMemory(name=name) for key, name in names.items()}
    try:
        ctrl = np.ndarray(
            (_ctrl_slots(workers),), dtype=np.float64, buffer=shms["ctrl"].buf
        )
        rec = RecoveryBlock(ctrl, workers, base=_CTRL_REC_BASE)
        # One capacity-sized workspace per worker process, reused across
        # every job the pool ever runs — the persistent-pool analogue of
        # long-lived MPI rank buffers (zero steady-state allocation).
        ws = PlaneWorkspace(capacity)
        resume = resume_plane
        while True:
            if resume is None:
                if policy is None:
                    start_barrier.wait()
                else:
                    worker_idle_wait(start_barrier, policy)
            if ctrl[_CTRL_SHUTDOWN]:
                return
            n1 = int(ctrl[_CTRL_N1])
            n2 = int(ctrl[_CTRL_N2])
            n3 = int(ctrl[_CTRL_N3])
            g2 = float(ctrl[_CTRL_G2])
            score_only = bool(ctrl[_CTRL_SCORE_ONLY])
            dims = (n1, n2, n3)
            planes = [
                np.ndarray(
                    (n1 + 2, n2 + 2), dtype=np.float64, buffer=shms[f"plane{r}"].buf
                )
                for r in range(4)
            ]
            sab = np.ndarray((n1, n2), dtype=np.float64, buffer=shms["sab"].buf)
            sac = np.ndarray((n1, n3), dtype=np.float64, buffer=shms["sac"].buf)
            sbc = np.ndarray((n2, n3), dtype=np.float64, buffer=shms["sbc"].buf)
            move_cube = (
                None
                if score_only
                else np.ndarray(
                    (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=shms["moves"].buf
                )
            )
            # Observability state was inherited at pool construction time
            # (the workers fork once); per-job records still carry the
            # correct pid/worker ids. A mid-sweep replacement skips the
            # per-plane logs — its list would not line up with plane 0.
            observing = _obs.active() and resume is None
            busy = wait = 0.0
            cells = 0
            if observing:
                plane_cell_log: list[int] = []
                plane_dur_log: list[float] = []
            dmax = n1 + n2 + n3
            d = resume if resume is not None else 0
            resume = None
            last_done = d - 1
            seen = rec.epoch
            # Sweep planes 0..dmax, then the completion rendezvous at
            # dmax+1. On a broken barrier the wait returns the
            # dispatcher's resume plane; planes already computed
            # (d <= last_done) are not recomputed, only re-met.
            while d <= dmax + 1:
                if d <= dmax and d > last_done:
                    _faults.maybe_inject("pool", worker_id, d, dmax)
                    t0 = time.perf_counter() if observing else 0.0
                    plane_cells = 0
                    ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
                    if ilo <= ihi:
                        lo, hi = split_range(ilo, ihi, workers)[worker_id]
                        if lo <= hi:
                            plane_cells = compute_plane_rows(
                                d,
                                lo,
                                hi,
                                planes[(d - 1) % 4],
                                planes[(d - 2) % 4],
                                planes[(d - 3) % 4],
                                planes[d % 4],
                                sab,
                                sac,
                                sbc,
                                g2,
                                dims,
                                move_cube=move_cube,
                                ws=ws,
                            )
                            cells += plane_cells
                    last_done = d
                    if observing:
                        t1 = time.perf_counter()
                        busy += t1 - t0
                        plane_cell_log.append(plane_cells)
                        plane_dur_log.append(t1 - t0)
                rec.heartbeat(worker_id, d)
                if policy is None:
                    plane_barrier.wait()
                    d += 1
                else:
                    t_wait = time.perf_counter() if observing else 0.0
                    d, seen = worker_plane_wait(
                        plane_barrier, rec, d, seen, policy
                    )
                    if observing:
                        wait += time.perf_counter() - t_wait
            if observing:
                _obs.record_planes("pool", plane_cell_log, plane_dur_log)
                _obs.record_worker(
                    "pool", worker_id, busy, wait, cells, dmax + 1
                )
                _trace.flush()
    finally:
        for shm in shms.values():
            shm.close()


class WavefrontPool:
    """A reusable pool of wavefront workers.

    Parameters
    ----------
    capacity:
        Maximum sequence lengths ``(n1, n2, n3)`` any job may have; buffers
        are sized once for this.
    workers:
        Total workers including the dispatching process (so ``workers=2``
        spawns one child). Falls back to serial execution when 1, or when
        the platform lacks ``fork``.
    supervise:
        When True (default) every barrier wait has a timeout and dead or
        wedged workers are respawned with the current plane replayed;
        ``policy`` tunes the timeouts. When False the pool behaves like
        the pre-supervision engine (infinite waits) — kept for overhead
        measurement.

    Use as a context manager::

        with WavefrontPool((120, 120, 120), workers=2) as pool:
            for job in jobs:
                aln = pool.align3(*job, scheme)
    """

    def __init__(
        self,
        capacity: tuple[int, int, int],
        workers: int = 2,
        supervise: bool = True,
        policy: SupervisionPolicy | None = None,
    ):
        check_positive("workers", workers)
        for c in capacity:
            if c < 0:
                raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = tuple(int(c) for c in capacity)
        self.workers = workers
        self.policy = (
            (policy or SupervisionPolicy.from_env()) if supervise else None
        )
        self._serial = workers == 1 or not fork_available()
        # The dispatcher's own workspace (also the serial fallback's):
        # sized to capacity once, so every job runs allocation-free.
        self._ws = PlaneWorkspace(self.capacity)
        self._closed = False
        self._failed = False
        self._shms: dict[str, shared_memory.SharedMemory] = {}
        self._procs: dict[int, mp.Process] = {}
        self._supervisor: Supervisor | None = None
        if self._serial:
            return

        c1, c2, c3 = self.capacity
        self._ctx = mp.get_context("fork")
        sizes = {
            "ctrl": _ctrl_slots(workers) * 8,
            "sab": max(1, c1 * c2 * 8),
            "sac": max(1, c1 * c3 * 8),
            "sbc": max(1, c2 * c3 * 8),
            "moves": max(1, (c1 + 1) * (c2 + 1) * (c3 + 1)),
        }
        for r in range(4):
            sizes[f"plane{r}"] = (c1 + 2) * (c2 + 2) * 8
        for key, size in sizes.items():
            self._shms[key] = shared_memory.SharedMemory(create=True, size=size)
        self._ctrl = np.ndarray(
            (_ctrl_slots(workers),), dtype=np.float64, buffer=self._shms["ctrl"].buf
        )
        self._ctrl[:] = 0.0
        self._rec = RecoveryBlock(self._ctrl, workers, base=_CTRL_REC_BASE)
        self._start_barrier = self._ctx.Barrier(workers)
        self._plane_barrier = self._ctx.Barrier(workers)
        self._names = {key: shm.name for key, shm in self._shms.items()}
        for w in range(1, workers):
            self._procs[w] = self._spawn(w, None, faults_armed=True)
        if self.policy is not None:
            self._supervisor = Supervisor(
                "pool",
                barrier=self._plane_barrier,
                rec=self._rec,
                procs=self._procs,
                respawn=self._respawn,
                policy=self.policy,
            )

    # ------------------------------------------------------------------

    def _spawn(
        self, worker_id: int, resume_plane: int | None, faults_armed: bool
    ) -> mp.Process:
        # Flush buffered trace lines so the fork doesn't duplicate them.
        _trace.flush()
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(
                worker_id,
                self.workers,
                self.capacity,
                self._names,
                self._start_barrier,
                self._plane_barrier,
                self.policy,
                resume_plane,
                faults_armed,
            ),
            daemon=True,
        )
        proc.start()
        return proc

    def _respawn(self, worker_id: int, resume_plane: int | None) -> mp.Process:
        return self._spawn(worker_id, resume_plane, faults_armed=False)

    def __enter__(self) -> "WavefrontPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down and release the shared buffers.

        Escalates join -> terminate -> kill so a wedged worker cannot
        hang shutdown, and always releases the shared-memory segments —
        leaked SHM would outlive the process.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if not self._serial:
                all_alive = all(p.is_alive() for p in self._procs.values())
                if not self._failed and all_alive:
                    self._ctrl[_CTRL_SHUTDOWN] = 1.0
                    try:
                        self._start_barrier.wait(timeout=10)
                    except threading.BrokenBarrierError:
                        pass  # dead/wedged worker; escalation handles it
                for proc in self._procs.values():
                    proc.join(timeout=10)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join(timeout=5)
        finally:
            for shm in self._shms.values():
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    # ------------------------------------------------------------------

    def _check_job(self, sa: str, sb: str, sc: str, scheme: ScoringScheme):
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._failed:
            raise RuntimeError(
                "pool is unusable after an unrecovered worker failure"
            )
        check_sequences((sa, sb, sc), count=3)
        if scheme.is_affine:
            raise ValueError("WavefrontPool implements the linear gap model")
        dims = (len(sa), len(sb), len(sc))
        for n, cap in zip(dims, self.capacity):
            if n > cap:
                raise ValueError(
                    f"job dims {dims} exceed pool capacity {self.capacity}"
                )
        return dims

    def _dispatch_start(self) -> None:
        if self._supervisor is not None:
            self._supervisor.wait_job_start(self._start_barrier)
        else:
            self._start_barrier.wait()

    def _plane_wait(self, d: int) -> None:
        if self._supervisor is not None:
            self._supervisor.wait(d)
        else:
            self._plane_barrier.wait()

    def _run(
        self,
        sa: str,
        sb: str,
        sc: str,
        scheme: ScoringScheme,
        score_only: bool,
    ) -> tuple[float, np.ndarray | None]:
        n1, n2, n3 = self._check_job(sa, sb, sc, scheme)
        if self._serial:
            from repro.core.wavefront import wavefront_sweep

            res = wavefront_sweep(
                sa, sb, sc, scheme, score_only=score_only, workspace=self._ws
            )
            return res.score, res.move_cube

        try:
            return self._run_parallel(sa, sb, sc, scheme, score_only)
        except Exception:
            # An unrecovered failure (WorkerFailure, broken protocol)
            # leaves buffers in an unknown state; poison the pool so
            # later jobs fail fast, and kill what is left.
            self._failed = True
            if self._supervisor is not None:
                self._supervisor.abort()
            raise

    def _run_parallel(
        self,
        sa: str,
        sb: str,
        sc: str,
        scheme: ScoringScheme,
        score_only: bool,
    ) -> tuple[float, np.ndarray | None]:
        n1, n2, n3 = len(sa), len(sb), len(sc)
        sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
        dims = (n1, n2, n3)
        # Stage the job into the shared buffers.
        if n1 and n2:
            np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)[:] = sab
        if n1 and n3:
            np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)[:] = sac
        if n2 and n3:
            np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)[:] = sbc
        planes = [
            np.ndarray(
                (n1 + 2, n2 + 2), dtype=np.float64, buffer=self._shms[f"plane{r}"].buf
            )
            for r in range(4)
        ]
        for p in planes:
            p.fill(NEG)
        move_cube = None
        if not score_only:
            move_cube = np.ndarray(
                (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=self._shms["moves"].buf
            )
            move_cube.fill(0)
        self._ctrl[_CTRL_N1] = n1
        self._ctrl[_CTRL_N2] = n2
        self._ctrl[_CTRL_N3] = n3
        self._ctrl[_CTRL_G2] = 2.0 * scheme.gap
        self._ctrl[_CTRL_SCORE_ONLY] = 1.0 if score_only else 0.0
        self._rec.reset_job()

        observing = _obs.active()
        t_sweep = time.perf_counter() if observing else 0.0
        self._dispatch_start()
        # The dispatcher is worker 0.
        g2 = 2.0 * scheme.gap
        sab_v = np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)
        sac_v = np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)
        sbc_v = np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)
        busy = wait = 0.0
        cells = 0
        if observing:
            plane_cell_log: list[int] = []
            plane_dur_log: list[float] = []
        for d in range(n1 + n2 + n3 + 1):
            t0 = time.perf_counter() if observing else 0.0
            plane_cells = 0
            ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
            if ilo <= ihi:
                lo, hi = split_range(ilo, ihi, self.workers)[0]
                if lo <= hi:
                    plane_cells = compute_plane_rows(
                        d,
                        lo,
                        hi,
                        planes[(d - 1) % 4],
                        planes[(d - 2) % 4],
                        planes[(d - 3) % 4],
                        planes[d % 4],
                        sab_v,
                        sac_v,
                        sbc_v,
                        g2,
                        dims,
                        move_cube=move_cube,
                        ws=self._ws,
                    )
                    cells += plane_cells
            if observing:
                t1 = time.perf_counter()
                busy += t1 - t0
                plane_cell_log.append(plane_cells)
                plane_dur_log.append(t1 - t0)
            self._rec.heartbeat(0, d)
            self._plane_wait(d)
            if observing:
                wait += time.perf_counter() - t1
        dmax = n1 + n2 + n3
        self._rec.heartbeat(0, dmax + 1)
        self._plane_wait(dmax + 1)  # job-completion rendezvous

        score = float(planes[dmax % 4][n1 + 1, n2 + 1])
        moves = None if move_cube is None else move_cube.copy()
        if observing:
            _obs.record_planes("pool", plane_cell_log, plane_dur_log)
            _obs.record_worker("pool", 0, busy, wait, cells, dmax + 1)
            _obs.record_sweep(
                "pool",
                cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
                seconds=time.perf_counter() - t_sweep,
                peak_plane_bytes=4 * (n1 + 2) * (n2 + 2) * 8,
                move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
            )
        return score, moves

    # ------------------------------------------------------------------

    @property
    def failures(self) -> list:
        """Failure records accumulated by supervision (empty when clean)."""
        if self._supervisor is None:
            return []
        return list(self._supervisor.failures)

    def score3(self, sa: str, sb: str, sc: str, scheme: ScoringScheme) -> float:
        """Optimal SP score (score-only sweep on the pool)."""
        score, _ = self._run(sa, sb, sc, scheme, score_only=True)
        return score

    def align3(
        self, sa: str, sb: str, sc: str, scheme: ScoringScheme
    ) -> Alignment3:
        """Optimal alignment with traceback, computed on the pool."""
        score, move_cube = self._run(sa, sb, sc, scheme, score_only=False)
        assert move_cube is not None
        moves = traceback_moves(move_cube)
        cols = moves_to_columns(moves, sa, sb, sc)
        rows = tuple("".join(col[r] for col in cols) for r in range(3))
        meta = {
            "engine": "pool",
            "workers": self.workers,
            "serial_fallback": self._serial,
            "supervised": self.policy is not None,
            "recoveries": len(self.failures),
        }
        return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
