"""Persistent multiprocess worker pool for the wavefront engine.

:mod:`repro.parallel.shared` spawns its workers per call, which costs tens
of milliseconds — more than the whole sweep below n ≈ 100 (the F3 caveat
in ``EXPERIMENTS.md``). :class:`WavefrontPool` keeps the workers and
shared buffers alive across calls, the way a long-running MPI rank set
would, so repeated alignments pay only the per-job dispatch cost.

Protocol
--------
The pool allocates capacity-sized shared buffers once (a ``W``-deep
rotating plane window, three profile-matrix buffers, a move cube and a
small control block). Per job the main process writes the job descriptor
(dims, gap, score-only flag) and the profile matrices, resets the planes
and the progress counters, and everyone meets at the start barrier;
workers then stream the block-tiled sweep (fixed row slab × plane bands,
counter synchronisation — :mod:`repro.parallel.blockwave`) and return to
the start barrier for the next job. Shutdown is a job with the shutdown
flag set.

Workers whose id exceeds the job's slab count (more workers than rows)
publish completion immediately and go straight back to the start
barrier: they pay zero per-plane cost for that job instead of meeting
every barrier with an empty assignment, which is what the old per-plane
protocol made them do.

Supervision (default on) makes the pool survive worker failure: the
control block carries one progress counter per worker, every counter
wait has a timeout, and the dispatcher responds to a stall by respawning
dead (or wedged) workers resuming at their published counter — block-
granular replay (:class:`~repro.parallel.blockwave.CounterSupervisor`).
The window arithmetic keeps the planes a replacement needs intact, so
replay needs no checkpoint and the output stays bit-identical to the
serial engine. See ``docs/robustness.md``.

Determinism matches :mod:`repro.parallel.blocks`: identical slabs,
identical argmax tie-breaking, bit-identical output to the serial engine.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.workspace import PlaneWorkspace
from repro.parallel.blockwave import (
    BlockProgress,
    CounterSupervisor,
    sweep_blocks,
    worker_counter_wait,
)
from repro.parallel.partition import (
    band_depth,
    plane_bands,
    plane_window,
    row_slabs,
)
from repro.parallel.shared import fork_available
from repro.resilience import faults as _faults
from repro.resilience.errors import FailureRecord
from repro.resilience.supervise import (
    SupervisionPolicy,
    Supervisor,
    worker_idle_wait,
)
from repro.util.validation import check_positive, check_sequences

# Control-block slots (float64 each). One progress counter per worker
# (the blockwave ``done[w]`` protocol) sits at _CTRL_COUNTER_BASE.
_CTRL_SHUTDOWN = 0
_CTRL_N1 = 1
_CTRL_N2 = 2
_CTRL_N3 = 3
_CTRL_G2 = 4
_CTRL_SCORE_ONLY = 5
_CTRL_COUNTER_BASE = 6


def _ctrl_slots(workers: int) -> int:
    return _CTRL_COUNTER_BASE + workers


def _job_band(band_cap: int, dmax: int, active: int) -> int:
    """The band depth every participant derives for a job — identical
    inputs (constructor cap + staged dims), identical result."""
    return min(band_cap, band_depth(dmax, active, cap=band_cap))


def _pool_worker(
    worker_id: int,
    workers: int,
    capacity: tuple[int, int, int],
    band_cap: int,
    window_cap: int,
    names: dict[str, str],
    start_barrier,
    policy: SupervisionPolicy | None,
    resume_plane: int | None = None,
    faults_armed: bool = True,
) -> None:
    """Worker main loop: wait for a job, stream its slab, repeat until
    shutdown.

    A respawned replacement arrives with ``resume_plane`` set (skip the
    job-start barrier, re-enter the current sweep at its predecessor's
    published counter) and ``faults_armed=False`` (a replayed block must
    not re-trigger the injected crash that killed its predecessor).
    """
    if not faults_armed:
        _faults.disarm_all()
    shms = {key: shared_memory.SharedMemory(name=name) for key, name in names.items()}
    try:
        ctrl = np.ndarray(
            (_ctrl_slots(workers),), dtype=np.float64, buffer=shms["ctrl"].buf
        )
        progress = BlockProgress(ctrl, workers, base=_CTRL_COUNTER_BASE)
        # One capacity-sized workspace per worker process, reused across
        # every job the pool ever runs — the persistent-pool analogue of
        # long-lived MPI rank buffers (zero steady-state allocation).
        ws = PlaneWorkspace(capacity)
        resume = resume_plane
        while True:
            if resume is None:
                if policy is None:
                    start_barrier.wait()
                else:
                    worker_idle_wait(start_barrier, policy)
            if ctrl[_CTRL_SHUTDOWN]:
                return
            n1 = int(ctrl[_CTRL_N1])
            n2 = int(ctrl[_CTRL_N2])
            n3 = int(ctrl[_CTRL_N3])
            g2 = float(ctrl[_CTRL_G2])
            score_only = bool(ctrl[_CTRL_SCORE_ONLY])
            dims = (n1, n2, n3)
            dmax = n1 + n2 + n3
            slabs = row_slabs(n1, workers)
            active = len(slabs)
            if worker_id >= active:
                # More workers than row slabs: nothing to compute for
                # this job. Publish completion so nobody ever waits on
                # this counter and go idle — zero per-plane cost,
                # instead of meeting every plane barrier with an empty
                # assignment as the old protocol required.
                progress.publish(worker_id, dmax)
                resume = None
                continue
            depth = _job_band(band_cap, dmax, active)
            window = min(plane_window(depth), dmax + 4)
            planes = [
                np.ndarray(
                    (n1 + 2, n2 + 2), dtype=np.float64, buffer=shms[f"plane{r}"].buf
                )
                for r in range(window)
            ]
            sab = np.ndarray((n1, n2), dtype=np.float64, buffer=shms["sab"].buf)
            sac = np.ndarray((n1, n3), dtype=np.float64, buffer=shms["sac"].buf)
            sbc = np.ndarray((n2, n3), dtype=np.float64, buffer=shms["sbc"].buf)
            move_cube = (
                None
                if score_only
                else np.ndarray(
                    (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=shms["moves"].buf
                )
            )
            # Observability state was inherited at pool construction time
            # (the workers fork once); per-job records still carry the
            # correct pid/worker ids. A mid-sweep replacement skips the
            # per-worker record — its tallies would not cover the job.
            sweep_blocks(
                "pool",
                worker_id,
                active,
                slabs[worker_id],
                plane_bands(dmax, depth),
                dims,
                planes,
                sab,
                sac,
                sbc,
                g2,
                move_cube,
                ws,
                progress,
                lambda w, target: worker_counter_wait(
                    progress, w, target, policy
                ),
                start_plane=0 if resume is None else resume,
                record=resume is None,
            )
            if resume is None and _obs.active():
                _trace.flush()
            resume = None
    finally:
        for shm in shms.values():
            shm.close()


class WavefrontPool:
    """A reusable pool of block-tiled wavefront workers.

    Parameters
    ----------
    capacity:
        Maximum sequence lengths ``(n1, n2, n3)`` any job may have; buffers
        are sized once for this.
    workers:
        Total workers including the dispatching process (so ``workers=2``
        spawns one child). Falls back to serial execution when 1, or when
        the platform lacks ``fork``. Jobs with fewer row slabs than
        workers leave the surplus workers idle for that job.
    supervise:
        When True (default) every counter wait has a timeout and dead or
        wedged workers are respawned resuming at their published counter;
        ``policy`` tunes the timeouts. When False the pool behaves like
        the pre-supervision engine (infinite waits) — kept for overhead
        measurement.
    band:
        Upper bound on the plane-band depth (planes streamed between
        synchronisations). Sizes the shared plane window once:
        ``2 * band + 3`` capacity-sized buffers.

    Use as a context manager::

        with WavefrontPool((120, 120, 120), workers=2) as pool:
            for job in jobs:
                aln = pool.align3(*job, scheme)
    """

    def __init__(
        self,
        capacity: tuple[int, int, int],
        workers: int = 2,
        supervise: bool = True,
        policy: SupervisionPolicy | None = None,
        band: int = 8,
    ):
        check_positive("workers", workers)
        check_positive("band", band)
        for c in capacity:
            if c < 0:
                raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = tuple(int(c) for c in capacity)
        self.workers = workers
        self.band = band
        self.window = plane_window(band)
        self.policy = (
            (policy or SupervisionPolicy.from_env()) if supervise else None
        )
        self._serial = workers == 1 or not fork_available()
        # The dispatcher's own workspace (also the serial fallback's):
        # sized to capacity once, so every job runs allocation-free.
        self._ws = PlaneWorkspace(self.capacity)
        self._closed = False
        self._failed = False
        self._shms: dict[str, shared_memory.SharedMemory] = {}
        self._procs: dict[int, mp.Process] = {}
        self._start_supervisor: Supervisor | None = None
        self._failures: list[FailureRecord] = []
        if self._serial:
            return

        c1, c2, c3 = self.capacity
        self._ctx = mp.get_context("fork")
        sizes = {
            "ctrl": _ctrl_slots(workers) * 8,
            "sab": max(1, c1 * c2 * 8),
            "sac": max(1, c1 * c3 * 8),
            "sbc": max(1, c2 * c3 * 8),
            "moves": max(1, (c1 + 1) * (c2 + 1) * (c3 + 1)),
        }
        for r in range(self.window):
            sizes[f"plane{r}"] = (c1 + 2) * (c2 + 2) * 8
        for key, size in sizes.items():
            self._shms[key] = shared_memory.SharedMemory(create=True, size=size)
        self._ctrl = np.ndarray(
            (_ctrl_slots(workers),), dtype=np.float64, buffer=self._shms["ctrl"].buf
        )
        self._ctrl[:] = 0.0
        self._progress = BlockProgress(
            self._ctrl, workers, base=_CTRL_COUNTER_BASE
        )
        self._start_barrier = self._ctx.Barrier(workers)
        self._names = {key: shm.name for key, shm in self._shms.items()}
        for w in range(1, workers):
            self._procs[w] = self._spawn(w, None, faults_armed=True)
        if self.policy is not None:
            # Supervises only the job-start rendezvous (a worker dead
            # while idle); mid-sweep supervision is the per-job
            # CounterSupervisor in _run_parallel.
            self._start_supervisor = Supervisor(
                "pool",
                barrier=self._start_barrier,
                rec=None,  # type: ignore[arg-type]  # start waits never touch it
                procs=self._procs,
                respawn=lambda w, _d: self._spawn(w, None, faults_armed=False),
                policy=self.policy,
            )

    # ------------------------------------------------------------------

    def _spawn(
        self, worker_id: int, resume_plane: int | None, faults_armed: bool
    ) -> mp.Process:
        # Flush buffered trace lines so the fork doesn't duplicate them.
        _trace.flush()
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(
                worker_id,
                self.workers,
                self.capacity,
                self.band,
                self.window,
                self._names,
                self._start_barrier,
                self.policy,
                resume_plane,
                faults_armed,
            ),
            daemon=True,
        )
        proc.start()
        return proc

    def _respawn(self, worker_id: int, resume_plane: int) -> mp.Process:
        return self._spawn(worker_id, resume_plane, faults_armed=False)

    def __enter__(self) -> "WavefrontPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down and release the shared buffers.

        Escalates join -> terminate -> kill so a wedged worker cannot
        hang shutdown, and always releases the shared-memory segments —
        leaked SHM would outlive the process.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if not self._serial:
                all_alive = all(p.is_alive() for p in self._procs.values())
                if not self._failed and all_alive:
                    self._ctrl[_CTRL_SHUTDOWN] = 1.0
                    try:
                        self._start_barrier.wait(timeout=10)
                    except threading.BrokenBarrierError:
                        pass  # dead/wedged worker; escalation handles it
                for proc in self._procs.values():
                    proc.join(timeout=10)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join(timeout=5)
        finally:
            for shm in self._shms.values():
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass

    # ------------------------------------------------------------------

    def _check_job(self, sa: str, sb: str, sc: str, scheme: ScoringScheme):
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._failed:
            raise RuntimeError(
                "pool is unusable after an unrecovered worker failure"
            )
        check_sequences((sa, sb, sc), count=3)
        if scheme.is_affine:
            raise ValueError("WavefrontPool implements the linear gap model")
        dims = (len(sa), len(sb), len(sc))
        for n, cap in zip(dims, self.capacity):
            if n > cap:
                raise ValueError(
                    f"job dims {dims} exceed pool capacity {self.capacity}"
                )
        return dims

    def _dispatch_start(self) -> None:
        if self._start_supervisor is not None:
            self._start_supervisor.wait_job_start(self._start_barrier)
        else:
            self._start_barrier.wait()

    def _run(
        self,
        sa: str,
        sb: str,
        sc: str,
        scheme: ScoringScheme,
        score_only: bool,
    ) -> tuple[float, np.ndarray | None]:
        n1, n2, n3 = self._check_job(sa, sb, sc, scheme)
        if self._serial:
            from repro.core.wavefront import wavefront_sweep

            res = wavefront_sweep(
                sa, sb, sc, scheme, score_only=score_only, workspace=self._ws
            )
            return res.score, res.move_cube

        try:
            return self._run_parallel(sa, sb, sc, scheme, score_only)
        except Exception:
            # An unrecovered failure (WorkerFailure, broken protocol)
            # leaves buffers in an unknown state; poison the pool so
            # later jobs fail fast, and kill what is left.
            self._failed = True
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
            for proc in self._procs.values():
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover
                    proc.kill()
                    proc.join(timeout=5)
            raise

    def _run_parallel(
        self,
        sa: str,
        sb: str,
        sc: str,
        scheme: ScoringScheme,
        score_only: bool,
    ) -> tuple[float, np.ndarray | None]:
        n1, n2, n3 = len(sa), len(sb), len(sc)
        sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
        dims = (n1, n2, n3)
        dmax = n1 + n2 + n3
        slabs = row_slabs(n1, self.workers)
        active = len(slabs)
        depth = _job_band(self.band, dmax, active)
        window = min(plane_window(depth), dmax + 4)
        # Stage the job into the shared buffers.
        if n1 and n2:
            np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)[:] = sab
        if n1 and n3:
            np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)[:] = sac
        if n2 and n3:
            np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)[:] = sbc
        planes = [
            np.ndarray(
                (n1 + 2, n2 + 2), dtype=np.float64, buffer=self._shms[f"plane{r}"].buf
            )
            for r in range(window)
        ]
        for p in planes:
            p.fill(NEG)
        move_cube = None
        if not score_only:
            move_cube = np.ndarray(
                (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=self._shms["moves"].buf
            )
            move_cube.fill(0)
        self._ctrl[_CTRL_N1] = n1
        self._ctrl[_CTRL_N2] = n2
        self._ctrl[_CTRL_N3] = n3
        self._ctrl[_CTRL_G2] = 2.0 * scheme.gap
        self._ctrl[_CTRL_SCORE_ONLY] = 1.0 if score_only else 0.0
        # Counters must read -1 before any worker sees the released
        # start barrier (workers only read them post-release).
        self._progress.reset()

        observing = _obs.active()
        t_sweep = time.perf_counter() if observing else 0.0
        self._dispatch_start()
        supervisor: CounterSupervisor | None = None
        if self.policy is not None:
            supervisor = CounterSupervisor(
                "pool",
                self._progress,
                self._procs,
                respawn=self._respawn,
                policy=self.policy,
                dmax=dmax,
            )
            wait = supervisor.wait_for
        else:

            def wait(w: int, target: int) -> None:
                delay = 0.00005
                while self._progress.done(w) < target:
                    time.sleep(delay)
                    delay = min(delay * 2, 0.002)

        # The dispatcher is worker 0, owning the bottom slab.
        g2 = 2.0 * scheme.gap
        sab_v = np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)
        sac_v = np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)
        sbc_v = np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)
        try:
            sweep_blocks(
                "pool",
                0,
                active,
                slabs[0],
                plane_bands(dmax, depth),
                dims,
                planes,
                sab_v,
                sac_v,
                sbc_v,
                g2,
                move_cube,
                self._ws,
                self._progress,
                wait,
            )
            if supervisor is not None:
                supervisor.wait_all()  # job-completion rendezvous
            else:
                for w in range(1, self.workers):
                    wait(w, dmax)
        finally:
            if supervisor is not None:
                self._failures.extend(supervisor.failures)

        score = float(planes[dmax % window][n1 + 1, n2 + 1])
        moves = None if move_cube is None else move_cube.copy()
        if observing:
            _obs.record_sweep(
                "pool",
                cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
                seconds=time.perf_counter() - t_sweep,
                peak_plane_bytes=window * (n1 + 2) * (n2 + 2) * 8,
                move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
            )
        return score, moves

    # ------------------------------------------------------------------

    @property
    def failures(self) -> list:
        """Failure records accumulated by supervision (empty when clean)."""
        records = list(self._failures)
        if self._start_supervisor is not None:
            records.extend(self._start_supervisor.failures)
        return records

    def score3(self, sa: str, sb: str, sc: str, scheme: ScoringScheme) -> float:
        """Optimal SP score (score-only sweep on the pool)."""
        score, _ = self._run(sa, sb, sc, scheme, score_only=True)
        return score

    def align3(
        self, sa: str, sb: str, sc: str, scheme: ScoringScheme
    ) -> Alignment3:
        """Optimal alignment with traceback, computed on the pool."""
        score, move_cube = self._run(sa, sb, sc, scheme, score_only=False)
        assert move_cube is not None
        moves = traceback_moves(move_cube)
        cols = moves_to_columns(moves, sa, sb, sc)
        rows = tuple("".join(col[r] for col in cols) for r in range(3))
        meta = {
            "engine": "pool",
            "workers": self.workers,
            "serial_fallback": self._serial,
            "supervised": self.policy is not None,
            "recoveries": len(self.failures),
        }
        return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
