"""Persistent multiprocess worker pool for the wavefront engine.

:mod:`repro.parallel.shared` spawns its workers per call, which costs tens
of milliseconds — more than the whole sweep below n ≈ 100 (the F3 caveat
in ``EXPERIMENTS.md``). :class:`WavefrontPool` keeps the workers, barriers
and shared buffers alive across calls, the way a long-running MPI rank set
would, so repeated alignments pay only the per-plane barrier cost.

Protocol
--------
The pool allocates capacity-sized shared buffers once (four plane buffers,
three profile-matrix buffers, a move cube and a small control block). Per
job the main process writes the job descriptor (dims, gap, score-only
flag) and the profile matrices, resets the planes, and everyone meets at
the start barrier; workers then run the standard one-barrier-per-plane
sweep and return to the start barrier for the next job. Shutdown is a job
with the shutdown flag set.

Determinism matches :mod:`repro.parallel.shared`: identical row splits,
identical argmax tie-breaking, bit-identical output to the serial engine.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.dp3d import NEG
from repro.obs import hooks as _obs
from repro.obs import trace as _trace
from repro.core.scoring import ScoringScheme
from repro.core.traceback import traceback_moves
from repro.core.types import Alignment3, moves_to_columns
from repro.core.wavefront import compute_plane_rows, plane_bounds
from repro.parallel.partition import split_range
from repro.parallel.shared import fork_available
from repro.util.validation import check_positive, check_sequences

# Control-block slots (float64 each).
_CTRL_SHUTDOWN = 0
_CTRL_N1 = 1
_CTRL_N2 = 2
_CTRL_N3 = 3
_CTRL_G2 = 4
_CTRL_SCORE_ONLY = 5
_CTRL_SLOTS = 8


def _pool_worker(
    worker_id: int,
    workers: int,
    capacity: tuple[int, int, int],
    names: dict[str, str],
    start_barrier,
    plane_barrier,
) -> None:
    """Worker main loop: wait for a job, sweep, repeat until shutdown."""
    c1, c2, c3 = capacity
    shms = {key: shared_memory.SharedMemory(name=name) for key, name in names.items()}
    try:
        ctrl = np.ndarray((_CTRL_SLOTS,), dtype=np.float64, buffer=shms["ctrl"].buf)
        while True:
            start_barrier.wait()
            if ctrl[_CTRL_SHUTDOWN]:
                return
            n1 = int(ctrl[_CTRL_N1])
            n2 = int(ctrl[_CTRL_N2])
            n3 = int(ctrl[_CTRL_N3])
            g2 = float(ctrl[_CTRL_G2])
            score_only = bool(ctrl[_CTRL_SCORE_ONLY])
            dims = (n1, n2, n3)
            planes = [
                np.ndarray(
                    (n1 + 2, n2 + 2), dtype=np.float64, buffer=shms[f"plane{r}"].buf
                )
                for r in range(4)
            ]
            sab = np.ndarray((n1, n2), dtype=np.float64, buffer=shms["sab"].buf)
            sac = np.ndarray((n1, n3), dtype=np.float64, buffer=shms["sac"].buf)
            sbc = np.ndarray((n2, n3), dtype=np.float64, buffer=shms["sbc"].buf)
            move_cube = (
                None
                if score_only
                else np.ndarray(
                    (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=shms["moves"].buf
                )
            )
            # Observability state was inherited at pool construction time
            # (the workers fork once); per-job records still carry the
            # correct pid/worker ids.
            observing = _obs.active()
            busy = wait = 0.0
            cells = 0
            if observing:
                plane_cell_log: list[int] = []
                plane_dur_log: list[float] = []
            for d in range(n1 + n2 + n3 + 1):
                t0 = time.perf_counter() if observing else 0.0
                plane_cells = 0
                ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
                if ilo <= ihi:
                    lo, hi = split_range(ilo, ihi, workers)[worker_id]
                    if lo <= hi:
                        plane_cells = compute_plane_rows(
                            d,
                            lo,
                            hi,
                            planes[(d - 1) % 4],
                            planes[(d - 2) % 4],
                            planes[(d - 3) % 4],
                            planes[d % 4],
                            sab,
                            sac,
                            sbc,
                            g2,
                            dims,
                            move_cube=move_cube,
                        )
                        cells += plane_cells
                if observing:
                    t1 = time.perf_counter()
                    busy += t1 - t0
                    plane_cell_log.append(plane_cells)
                    plane_dur_log.append(t1 - t0)
                plane_barrier.wait()
                if observing:
                    wait += time.perf_counter() - t1
            # Signal job completion back to the dispatcher.
            plane_barrier.wait()
            if observing:
                _obs.record_planes("pool", plane_cell_log, plane_dur_log)
                _obs.record_worker(
                    "pool", worker_id, busy, wait, cells, n1 + n2 + n3 + 1
                )
                _trace.flush()
    finally:
        for shm in shms.values():
            shm.close()


class WavefrontPool:
    """A reusable pool of wavefront workers.

    Parameters
    ----------
    capacity:
        Maximum sequence lengths ``(n1, n2, n3)`` any job may have; buffers
        are sized once for this.
    workers:
        Total workers including the dispatching process (so ``workers=2``
        spawns one child). Falls back to serial execution when 1, or when
        the platform lacks ``fork``.

    Use as a context manager::

        with WavefrontPool((120, 120, 120), workers=2) as pool:
            for job in jobs:
                aln = pool.align3(*job, scheme)
    """

    def __init__(self, capacity: tuple[int, int, int], workers: int = 2):
        check_positive("workers", workers)
        for c in capacity:
            if c < 0:
                raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = tuple(int(c) for c in capacity)
        self.workers = workers
        self._serial = workers == 1 or not fork_available()
        self._closed = False
        self._shms: dict[str, shared_memory.SharedMemory] = {}
        self._procs: list[mp.Process] = []
        if self._serial:
            return

        c1, c2, c3 = self.capacity
        ctx = mp.get_context("fork")
        sizes = {
            "ctrl": _CTRL_SLOTS * 8,
            "sab": max(1, c1 * c2 * 8),
            "sac": max(1, c1 * c3 * 8),
            "sbc": max(1, c2 * c3 * 8),
            "moves": max(1, (c1 + 1) * (c2 + 1) * (c3 + 1)),
        }
        for r in range(4):
            sizes[f"plane{r}"] = (c1 + 2) * (c2 + 2) * 8
        for key, size in sizes.items():
            self._shms[key] = shared_memory.SharedMemory(create=True, size=size)
        self._ctrl = np.ndarray(
            (_CTRL_SLOTS,), dtype=np.float64, buffer=self._shms["ctrl"].buf
        )
        self._ctrl[:] = 0.0
        self._start_barrier = ctx.Barrier(workers)
        self._plane_barrier = ctx.Barrier(workers)
        names = {key: shm.name for key, shm in self._shms.items()}
        # Flush buffered trace lines so the fork doesn't duplicate them.
        _trace.flush()
        for w in range(1, workers):
            proc = ctx.Process(
                target=_pool_worker,
                args=(
                    w,
                    workers,
                    self.capacity,
                    names,
                    self._start_barrier,
                    self._plane_barrier,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # ------------------------------------------------------------------

    def __enter__(self) -> "WavefrontPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down and release the shared buffers."""
        if self._closed:
            return
        self._closed = True
        if not self._serial:
            self._ctrl[_CTRL_SHUTDOWN] = 1.0
            self._start_barrier.wait()
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover
                    proc.terminate()
        for shm in self._shms.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------

    def _check_job(self, sa: str, sb: str, sc: str, scheme: ScoringScheme):
        if self._closed:
            raise RuntimeError("pool is closed")
        check_sequences((sa, sb, sc), count=3)
        if scheme.is_affine:
            raise ValueError("WavefrontPool implements the linear gap model")
        dims = (len(sa), len(sb), len(sc))
        for n, cap in zip(dims, self.capacity):
            if n > cap:
                raise ValueError(
                    f"job dims {dims} exceed pool capacity {self.capacity}"
                )
        return dims

    def _run(
        self,
        sa: str,
        sb: str,
        sc: str,
        scheme: ScoringScheme,
        score_only: bool,
    ) -> tuple[float, np.ndarray | None]:
        n1, n2, n3 = self._check_job(sa, sb, sc, scheme)
        if self._serial:
            from repro.core.wavefront import wavefront_sweep

            res = wavefront_sweep(sa, sb, sc, scheme, score_only=score_only)
            return res.score, res.move_cube

        sab, sac, sbc = scheme.profile_matrices(sa, sb, sc)
        dims = (n1, n2, n3)
        # Stage the job into the shared buffers.
        if n1 and n2:
            np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)[:] = sab
        if n1 and n3:
            np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)[:] = sac
        if n2 and n3:
            np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)[:] = sbc
        planes = [
            np.ndarray(
                (n1 + 2, n2 + 2), dtype=np.float64, buffer=self._shms[f"plane{r}"].buf
            )
            for r in range(4)
        ]
        for p in planes:
            p.fill(NEG)
        move_cube = None
        if not score_only:
            move_cube = np.ndarray(
                (n1 + 1, n2 + 1, n3 + 1), dtype=np.int8, buffer=self._shms["moves"].buf
            )
            move_cube.fill(0)
        self._ctrl[_CTRL_N1] = n1
        self._ctrl[_CTRL_N2] = n2
        self._ctrl[_CTRL_N3] = n3
        self._ctrl[_CTRL_G2] = 2.0 * scheme.gap
        self._ctrl[_CTRL_SCORE_ONLY] = 1.0 if score_only else 0.0

        observing = _obs.active()
        t_sweep = time.perf_counter() if observing else 0.0
        self._start_barrier.wait()
        # The dispatcher is worker 0.
        g2 = 2.0 * scheme.gap
        sab_v = np.ndarray((n1, n2), dtype=np.float64, buffer=self._shms["sab"].buf)
        sac_v = np.ndarray((n1, n3), dtype=np.float64, buffer=self._shms["sac"].buf)
        sbc_v = np.ndarray((n2, n3), dtype=np.float64, buffer=self._shms["sbc"].buf)
        busy = wait = 0.0
        cells = 0
        if observing:
            plane_cell_log: list[int] = []
            plane_dur_log: list[float] = []
        for d in range(n1 + n2 + n3 + 1):
            t0 = time.perf_counter() if observing else 0.0
            plane_cells = 0
            ilo, ihi, _jlo, _jhi = plane_bounds(d, n1, n2, n3)
            if ilo <= ihi:
                lo, hi = split_range(ilo, ihi, self.workers)[0]
                if lo <= hi:
                    plane_cells = compute_plane_rows(
                        d,
                        lo,
                        hi,
                        planes[(d - 1) % 4],
                        planes[(d - 2) % 4],
                        planes[(d - 3) % 4],
                        planes[d % 4],
                        sab_v,
                        sac_v,
                        sbc_v,
                        g2,
                        dims,
                        move_cube=move_cube,
                    )
                    cells += plane_cells
            if observing:
                t1 = time.perf_counter()
                busy += t1 - t0
                plane_cell_log.append(plane_cells)
                plane_dur_log.append(t1 - t0)
            self._plane_barrier.wait()
            if observing:
                wait += time.perf_counter() - t1
        self._plane_barrier.wait()  # job-completion rendezvous

        dmax = n1 + n2 + n3
        score = float(planes[dmax % 4][n1 + 1, n2 + 1])
        moves = None if move_cube is None else move_cube.copy()
        if observing:
            _obs.record_planes("pool", plane_cell_log, plane_dur_log)
            _obs.record_worker("pool", 0, busy, wait, cells, dmax + 1)
            _obs.record_sweep(
                "pool",
                cells=(n1 + 1) * (n2 + 1) * (n3 + 1),
                seconds=time.perf_counter() - t_sweep,
                peak_plane_bytes=4 * (n1 + 2) * (n2 + 2) * 8,
                move_cube_bytes=0 if move_cube is None else move_cube.nbytes,
            )
        return score, moves

    # ------------------------------------------------------------------

    def score3(self, sa: str, sb: str, sc: str, scheme: ScoringScheme) -> float:
        """Optimal SP score (score-only sweep on the pool)."""
        score, _ = self._run(sa, sb, sc, scheme, score_only=True)
        return score

    def align3(
        self, sa: str, sb: str, sc: str, scheme: ScoringScheme
    ) -> Alignment3:
        """Optimal alignment with traceback, computed on the pool."""
        score, move_cube = self._run(sa, sb, sc, scheme, score_only=False)
        assert move_cube is not None
        moves = traceback_moves(move_cube)
        cols = moves_to_columns(moves, sa, sb, sc)
        rows = tuple("".join(col[r] for col in cols) for r in range(3))
        meta = {
            "engine": "pool",
            "workers": self.workers,
            "serial_fallback": self._serial,
        }
        return Alignment3(rows=rows, score=score, meta=meta)  # type: ignore[arg-type]
