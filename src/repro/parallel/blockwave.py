"""Counter-synchronised block streaming for the block-tiled engines.

The per-plane engines pay one full barrier (every worker, one IPC
round-trip) per anti-diagonal plane — ``3n`` barriers per sweep, which
dominates once the kernel is fast. The block-tiled engines replace the
barrier with **per-worker readiness counters**: ``done[w]`` is the last
plane worker ``w`` has fully published. Workers own fixed row slabs
(:func:`repro.parallel.partition.row_slabs`), advance band-by-band
(:func:`~repro.parallel.partition.plane_bands`), and before computing a
band ``[s, e]`` wait on exactly two counters:

* ``done[w-1] >= e - 1`` — the slab below must have produced the
  boundary row (the kernel reads rows ``i-1`` and ``i`` only, so the
  cross-worker dependency is one-directional: downward);
* ``done[w+1] >= e - W + 3`` — writing plane ``d`` into a ``W``-deep
  rotating plane window destroys plane ``d - W``, which the slab above
  still reads while computing planes ``d-W+1 .. d-W+3`` (anti-clobber).

Counters are *published per plane* (one aligned 8-byte store, which
doubles as a progress heartbeat) but *waited on per band*, so the
planes inside a band stream with zero synchronisation. Publishing per
plane also lets a waiting neighbour release as soon as the producer is
one plane short of the band edge — sub-band pipelining for free.

Every cell is computed exactly once, by the same
:func:`~repro.core.wavefront.compute_plane_rows` call the serial engine
makes (same clipping, same tie-breaks, disjoint row writes), so scores
and rows are bit-identical to the sequential wavefront regardless of
the partition.

Recovery is *simpler* than the barrier engines' verdict protocol: a
dead worker's counter freezes, every neighbour just keeps waiting on
it, and the dispatcher (:class:`CounterSupervisor`) respawns a
replacement resuming at ``done[w] + 1``. The window arithmetic
guarantees planes ``resume-1 .. resume-3`` are still intact — the
neighbours' own progress was gated on the dead worker's frozen counter
— so replay needs no checkpoint and stays bit-identical. A replacement
on a tube-pruned run inherits the *same* per-plane live-row window
arrays the first incarnation used (they are computed once, pre-fork),
so recovery neither recomputes pruned rows nor loses the pruning
speedup.

This module is engine-agnostic: :mod:`repro.parallel.blocks` (per-call
fork engine) and :class:`repro.parallel.executor.WavefrontPool` both
drive :func:`sweep_blocks` with shared-memory counters; the thread
engine reimplements the same loop over a plain list (GIL-atomic
stores). Cross-process counter visibility relies on aligned 8-byte
stores issued after the plane writes they cover — the same ordering
assumption the barrier engines' heartbeat protocol already makes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.obs import hooks as _obs
from repro.core.wavefront import compute_plane_rows
from repro.resilience import faults as _faults
from repro.resilience.errors import FailureRecord, WorkerFailure
from repro.resilience.supervise import EXIT_NO_VERDICT, SupervisionPolicy

#: Seconds of pure re-reads before a waiter starts sleeping. Kept tiny:
#: on an oversubscribed host (CI often pins this repo to one core)
#: spinning steals the cycles the producer needs to make progress.
_SPIN_READS = 32
_SLEEP_MIN = 0.00005
_SLEEP_MAX = 0.002


class BlockProgress:
    """View of the per-worker progress counters in a shared array.

    ``done[w]`` is the last plane worker ``w`` has fully published
    (``-1`` = none). The backing array may be float64 (so the counters
    can live inside an engine's existing control block) — values are
    whole numbers either way, and an aligned 8-byte store/load is as
    atomic as this protocol needs.
    """

    def __init__(self, arr: np.ndarray, workers: int, base: int = 0):
        self._arr = arr
        self._base = base
        self.workers = workers

    def done(self, w: int) -> int:
        return int(self._arr[self._base + w])

    def publish(self, w: int, plane: int) -> None:
        self._arr[self._base + w] = plane

    def reset(self) -> None:
        self._arr[self._base : self._base + self.workers] = -1


def _parent_alive() -> bool:
    parent = mp.parent_process()
    return parent is None or parent.is_alive()


def worker_counter_wait(
    progress: BlockProgress,
    w: int,
    target: int,
    policy: SupervisionPolicy | None,
) -> None:
    """Worker-side wait until ``done[w] >= target``.

    Brief spin, then sleep with exponential backoff. A dead *neighbour*
    is not this worker's problem — the dispatcher respawns it and the
    counter resumes moving — but a dead *dispatcher* is: the worker
    exits once orphaned, or with :data:`EXIT_NO_VERDICT` when the wait
    outlasts ``policy.worker_timeout`` (shared state can no longer be
    trusted). ``policy=None`` (unsupervised) waits patiently forever,
    checking only for orphanhood.
    """
    if progress.done(w) >= target:
        return
    for _ in range(_SPIN_READS):
        if progress.done(w) >= target:
            return
    delay = _SLEEP_MIN
    deadline = (
        None
        if policy is None
        else time.perf_counter() + policy.worker_timeout
    )
    next_liveness = time.perf_counter() + 0.05
    while True:
        time.sleep(delay)
        if progress.done(w) >= target:
            return
        delay = min(delay * 2, _SLEEP_MAX)
        now = time.perf_counter()
        if now >= next_liveness:
            next_liveness = now + 0.05
            if not _parent_alive():
                os._exit(EXIT_NO_VERDICT)
            if deadline is not None and now > deadline:
                os._exit(EXIT_NO_VERDICT)


class CounterSupervisor:
    """Dispatcher-side counter waits with detection and block-granular
    recovery.

    The dispatcher (worker 0, the main process) waits on counters like
    any worker, but on a stall it scans its children: dead workers are
    respawned resuming at ``done[w] + 1`` (their counter is exact — a
    worker publishes plane ``d`` only after finishing it, so the
    replacement replays at most one partially-written plane, and the
    deterministic kernel rewrites identical values). A worker that is
    alive but has not advanced its counter past ``straggler_grace`` —
    while being the *pipeline minimum*, i.e. the one actually blocking
    everyone — is terminated and respawned the same way. Respawns per
    worker are capped at ``policy.max_respawns``; beyond that the run
    fails hard with the accumulated :class:`FailureRecord` log.
    """

    def __init__(
        self,
        engine: str,
        progress: BlockProgress,
        procs: dict[int, mp.Process],
        respawn: Callable[[int, int], mp.Process],
        policy: SupervisionPolicy,
        dmax: int,
    ):
        self.engine = engine
        self.progress = progress
        self.procs = procs
        self.respawn = respawn
        self.policy = policy
        self.dmax = dmax
        self.failures: list[FailureRecord] = []
        self._respawns: dict[int, int] = {}
        # Straggler clock: worker -> (last observed counter, observed at).
        self._seen: dict[int, tuple[int, float]] = {}

    def wait_for(self, w: int, target: int) -> None:
        """Wait until ``done[w] >= target``, scanning for casualties
        every ``barrier_timeout`` while stalled. Never hangs: either the
        counter advances (possibly via a respawned replacement) or the
        respawn cap turns the stall into :class:`WorkerFailure`."""
        if self.progress.done(w) >= target:
            return
        for _ in range(_SPIN_READS):
            if self.progress.done(w) >= target:
                return
        delay = _SLEEP_MIN
        next_scan = time.perf_counter() + self.policy.barrier_timeout
        while True:
            time.sleep(delay)
            if self.progress.done(w) >= target:
                return
            delay = min(delay * 2, _SLEEP_MAX)
            if time.perf_counter() >= next_scan:
                self.scan()
                next_scan = time.perf_counter() + self.policy.barrier_timeout

    def wait_all(self, target: int | None = None) -> None:
        """Wait until every worker's counter reaches ``target``
        (default: the final plane) — the job-completion rendezvous."""
        goal = self.dmax if target is None else target
        for w in sorted(self.procs):
            self.wait_for(w, goal)

    def scan(self) -> bool:
        """One detection round; returns True when a casualty was handled."""
        casualties: list[tuple[int, mp.Process, str]] = []
        now = time.perf_counter()
        floor = min(
            (self.progress.done(w) for w in self.procs), default=self.dmax
        )
        for w, proc in self.procs.items():
            if not proc.is_alive():
                casualties.append(
                    (w, proc, f"worker process died (exitcode {proc.exitcode})")
                )
                continue
            done = self.progress.done(w)
            if done >= self.dmax:
                self._seen.pop(w, None)
                continue
            last_done, since = self._seen.get(w, (None, now))
            if done != last_done:
                self._seen[w] = (done, now)
            elif (
                now - since >= self.policy.straggler_grace and done == floor
            ):
                # Alive, silent past grace, and the pipeline minimum —
                # everyone above is legitimately waiting on *it*. Kill
                # and replay; a mere waiter never matches ``== floor``.
                proc.terminate()
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover
                    proc.kill()
                    proc.join(timeout=5)
                casualties.append(
                    (w, proc, f"straggler (silent {now - since:.1f}s), killed")
                )
        for w, proc, reason in casualties:
            resume = self.progress.done(w) + 1
            count = self._respawns.get(w, 0) + 1
            self._respawns[w] = count
            record = FailureRecord(
                engine=self.engine,
                worker=w,
                plane=resume,
                reason=reason,
                exitcode=proc.exitcode,
                respawned=count <= self.policy.max_respawns,
            )
            self.failures.append(record)
            _obs.record_failure(self.engine, w, resume, reason)
            if count > self.policy.max_respawns:
                self.abort()
                raise WorkerFailure(
                    f"{self.engine} worker {w} failed {count} times "
                    f"(max_respawns={self.policy.max_respawns})",
                    self.failures,
                )
            self.procs[w] = self.respawn(w, resume)
            self._seen.pop(w, None)
            _obs.record_recovery(self.engine, w, resume)
        return bool(casualties)

    def abort(self) -> None:
        """Kill and reap every child (hard failure / forced shutdown)."""
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5)


def sweep_blocks(
    engine: str,
    worker_id: int,
    n_slabs: int,
    slab: tuple[int, int],
    bands: Sequence[tuple[int, int]],
    dims: tuple[int, int, int],
    planes: Sequence[np.ndarray],
    sab: np.ndarray,
    sac: np.ndarray,
    sbc: np.ndarray,
    g2: float,
    move_cube: np.ndarray | None,
    ws: Any,
    progress: BlockProgress,
    wait_for: Callable[[int, int], None],
    tube: Any = None,
    row_lo_by_d: np.ndarray | None = None,
    row_hi_by_d: np.ndarray | None = None,
    start_plane: int = 0,
    record: bool = True,
    inject: Callable[[str, int, int, int], None] | None = None,
) -> int:
    """One worker's block loop: stream every band of its row slab.

    ``planes`` is the ``W``-deep rotating plane window (``W = len(planes)``,
    sized by :func:`~repro.parallel.partition.plane_window`); ``wait_for``
    is the engine's counter wait (worker- or dispatcher-flavoured). A
    respawned replacement passes ``start_plane = done[w] + 1`` and the
    *same* ``row_lo_by_d``/``row_hi_by_d`` arrays, so a replayed band
    recomputes exactly the rows the tube window admits — block-granular
    replay without re-deriving anything.

    With a tube, a band whose slab/live-row intersection is empty on
    every plane is **skipped, not scheduled**: no waits (it reads and
    writes nothing — stale rows under the band are only ever read by
    tube-invalid cells, which the kernel overwrites with ``NEG``), just
    a counter publish so the neighbours keep flowing.

    ``inject`` is the fault-injection hook (default
    :func:`repro.resilience.faults.maybe_inject`, which calls
    ``os._exit`` — correct for process workers; the thread engine
    substitutes a raising hook because ``os._exit`` in a thread would
    take the whole process down).

    Returns the number of valid cells computed.
    """
    if inject is None:
        inject = _faults.maybe_inject
    n1, n2, n3 = dims
    dmax = n1 + n2 + n3
    lo, hi = slab
    w = worker_id
    window = len(planes)
    observing = _obs.active() and record
    busy = waited = 0.0
    cells = 0
    for s, e in bands:
        if e < start_plane:
            continue
        s = max(s, start_plane)
        if row_lo_by_d is not None and row_hi_by_d is not None:
            live = np.maximum(row_lo_by_d[s : e + 1], lo) <= np.minimum(
                row_hi_by_d[s : e + 1], hi
            )
            if not bool(live.any()):
                progress.publish(w, e)
                continue
        t_wait = time.perf_counter() if observing else 0.0
        if w > 0:
            wait_for(w - 1, e - 1)
        if w + 1 < n_slabs and e - window + 3 >= 0:
            wait_for(w + 1, e - window + 3)
        if observing:
            t0 = time.perf_counter()
            waited += t0 - t_wait
        else:
            t0 = 0.0
        for d in range(s, e + 1):
            inject(engine, w, d, dmax)
            rlo, rhi = lo, hi
            if row_lo_by_d is not None and row_hi_by_d is not None:
                rlo = max(rlo, int(row_lo_by_d[d]))
                rhi = min(rhi, int(row_hi_by_d[d]))
            if rlo <= rhi:
                cells += compute_plane_rows(
                    d,
                    rlo,
                    rhi,
                    planes[(d - 1) % window],
                    planes[(d - 2) % window],
                    planes[(d - 3) % window],
                    planes[d % window],
                    sab,
                    sac,
                    sbc,
                    g2,
                    dims,
                    move_cube=move_cube,
                    ws=ws,
                    tube=tube,
                )
            progress.publish(w, d)
        if observing:
            busy += time.perf_counter() - t0
    if observing:
        _obs.record_worker(engine, w, busy, waited, cells, dmax + 1)
    return cells
