#!/usr/bin/env python3
"""Beyond three sequences: progressive MSA over a UPGMA guide tree.

The exact 3-D DP is the core of this package; this example shows the
N-sequence extension built on the same substrate:

1. generate a six-member synthetic family,
2. build the pairwise distance matrix and UPGMA guide tree,
3. align progressively (profile-profile NW up the tree), and
4. for every embedded *triple*, compare the projection of the MSA against
   the exact three-way optimum — measuring how much SP score the
   progressive shortcut leaves on the table, triple by triple.

Run:  python examples/msa_family.py
"""

from itertools import combinations

from repro import MutationModel, default_scheme_for, mutated_family
from repro.core.api import align3_score
from repro.msa import align_msa, distance_matrix, upgma
from repro.seqio.alphabet import DNA
from repro.util.tables import Table


def main() -> None:
    scheme = default_scheme_for(DNA)
    family = mutated_family(
        45, model=MutationModel(0.15, 0.04, 0.04), count=6, seed=20
    )
    names = [f"taxon{i}" for i in range(len(family))]

    D = distance_matrix(family, scheme)
    tree = upgma(D)
    print("Guide tree:", tree.newick(names))

    msa = align_msa(family, scheme, names=names, tree=tree)
    print(f"\nProgressive MSA ({msa.depth} sequences, {msa.length} columns, "
          f"SP score {msa.sp_score(scheme):g}):\n")
    print(msa.pretty(70))

    # Exact three-way optima for every embedded triple vs the projection
    # of the MSA onto that triple.
    table = Table(
        "Per-triple optimality of the MSA (exact 3-D DP as ground truth)",
        ["triple", "exact_SP", "msa_projection_SP", "gap"],
    )
    total_gap = 0.0
    for a, b, c in combinations(range(msa.depth), 2 + 1):
        exact = align3_score(family[a], family[b], family[c], scheme)
        # Project the MSA onto the triple: keep all three rows, drop
        # columns where all three are gaps, and rescore.
        rows = [msa.rows[a], msa.rows[b], msa.rows[c]]
        kept = [
            col
            for col in zip(*rows)
            if any(ch != "-" for ch in col)
        ]
        proj = tuple("".join(col[r] for col in kept) for r in range(3))
        proj_score = scheme.sp_score(proj)
        total_gap += exact - proj_score
        table.add_row(f"{a}{b}{c}", exact, proj_score, exact - proj_score)
    print()
    print(table.render())
    print(f"\nTotal SP left on the table across all triples: {total_gap:g}")
    print("Each gap is recoverable by the exact 3-D engine — the paper's "
          "case for exact (sub)alignment inside larger MSA pipelines.")


if __name__ == "__main__":
    main()
