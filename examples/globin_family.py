#!/usr/bin/env python3
"""Protein workload: the classic globin triple (alpha, beta, myoglobin).

Aligning alpha-globin, beta-globin and myoglobin is the canonical
three-sequence alignment demonstration (it goes back to Murata et al.,
1985). This example:

1. loads the bundled globin fragments,
2. aligns them exactly under BLOSUM62 with linear and affine gap models,
3. compares against the center-star and progressive heuristics, and
4. reports the optimality gap that motivates exact alignment.

Run:  python examples/globin_family.py
"""

from repro import default_scheme_for
from repro.core.api import align3
from repro.heuristics import align3_centerstar, align3_progressive
from repro.seqio.alphabet import PROTEIN
from repro.seqio.datasets import load_dataset


def main() -> None:
    ds = load_dataset("globins")
    print(f"Dataset: {ds['description']}\n")
    names = [h for h, _ in ds["records"]]
    seqs = [s for _, s in ds["records"]]
    for name, seq in zip(names, seqs):
        print(f"  {name:14s} ({len(seq)} aa) {seq[:40]}...")

    scheme = default_scheme_for(PROTEIN)  # BLOSUM62, gap -8

    exact = align3(*seqs, scheme)
    cs = align3_centerstar(*seqs, scheme)
    pg = align3_progressive(*seqs, scheme)
    print(f"\nExact optimal SP score : {exact.score:8.1f} "
          f"({exact.meta['wall_time_s']*1e3:.0f} ms, {exact.meta['engine']})")
    print(f"Center-star heuristic  : {cs.score:8.1f} "
          f"(gap to optimal: {exact.score - cs.score:.1f})")
    print(f"Progressive heuristic  : {pg.score:8.1f} "
          f"(gap to optimal: {exact.score - pg.score:.1f})")

    print("\nOptimal alignment (first 60 columns):")
    print(exact.pretty(width=60).split("\n\n")[0])

    # Affine gaps: consolidate indels into runs (biologically preferred).
    affine = scheme.with_gaps(gap=-1.0, gap_open=-11.0)
    aln_aff = align3(*seqs, affine)
    print(f"\nAffine model (open -11, extend -1): score {aln_aff.score:.1f}, "
          f"{aln_aff.length} columns")
    runs = sum(
        1
        for row in aln_aff.rows
        for i, c in enumerate(row)
        if c == "-" and (i == 0 or row[i - 1] != "-")
    )
    print(f"Gap runs across all rows: {runs}")


if __name__ == "__main__":
    main()
