#!/usr/bin/env python3
"""Divergence study: pruning power and heuristic quality vs mutation rate.

Sweeps a synthetic family's divergence and reports, per level:

* how much of the O(n^3) lattice Carrillo–Lipman bounds eliminate,
* how close the heuristics come to the exact optimum, and
* the wall-time effect of pruning.

This is the workflow behind experiments T3 and F5 (see EXPERIMENTS.md).

Run:  python examples/divergence_study.py
"""

import time

from repro import MutationModel, default_scheme_for, mutated_family
from repro.core.bounds import carrillo_lipman_mask
from repro.core.wavefront import score3_wavefront
from repro.heuristics import align3_centerstar, align3_progressive
from repro.seqio.alphabet import DNA
from repro.util.tables import Table


def main() -> None:
    scheme = default_scheme_for(DNA)
    n = 70
    table = Table(
        f"Divergence sweep (ancestor length {n})",
        ["mut_scale", "exact", "best_heur", "gap", "kept_cells",
         "t_full_ms", "t_pruned_ms"],
    )

    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        fam = mutated_family(
            n, model=MutationModel().scaled(scale), seed=int(scale * 100)
        )

        t0 = time.perf_counter()
        exact = score3_wavefront(*fam, scheme)
        t_full = time.perf_counter() - t0

        heur = max(
            align3_centerstar(*fam, scheme).score,
            align3_progressive(*fam, scheme).score,
        )

        mask, stats = carrillo_lipman_mask(*fam, scheme, lower_bound=heur)
        t0 = time.perf_counter()
        pruned = score3_wavefront(*fam, scheme, mask=mask)
        t_pruned = time.perf_counter() - t0
        assert pruned == exact, "pruning must preserve the optimum"

        table.add_row(
            scale,
            exact,
            heur,
            exact - heur,
            f"{stats.kept_fraction:.2%}",
            t_full * 1e3,
            t_pruned * 1e3,
        )

    print(table.render())
    print(
        "\nReading the table: closer sequences (small mut_scale) let the\n"
        "pairwise bounds hug the 3-way optimum, so almost the entire cube\n"
        "is pruned; as divergence grows, the heuristic gap widens (why\n"
        "exact alignment matters) while pruning weakens (why it is hard)."
    )


if __name__ == "__main__":
    main()
