#!/usr/bin/env python3
"""Motif finding with local three-sequence alignment.

Plants a shared motif inside three unrelated random backbones (with a few
mutations per copy) and shows that:

* global alignment is dominated by the unrelated flanks,
* local (Smith–Waterman-style) three-way alignment recovers the planted
  motif and reports exactly where each copy sits, and
* semi-global (overlap) mode handles the staggered-fragments case.

Run:  python examples/motif_search.py
"""

from repro import MutationModel, default_scheme_for, random_sequence
from repro.core.local import align3_local
from repro.core.semiglobal import align3_semiglobal
from repro.core.api import align3
from repro.seqio.alphabet import DNA
from repro.seqio.generate import mutate_sequence


def main() -> None:
    scheme = default_scheme_for(DNA)
    motif = "GATTACCAGGATCCTGGAAC"
    light = MutationModel(substitution=0.08, insertion=0.0, deletion=0.0)

    # Three unrelated backbones, each hiding a lightly-mutated motif copy.
    copies = [
        mutate_sequence(motif, light, seed=100 + i) for i in range(3)
    ]
    seqs = []
    offsets = []
    for i, copy in enumerate(copies):
        left = random_sequence(12 + 7 * i, seed=200 + i)
        right = random_sequence(25 - 6 * i, seed=300 + i)
        offsets.append(len(left))
        seqs.append(left + copy + right)

    print("Planted motif:", motif)
    for i, (seq, off) in enumerate(zip(seqs, offsets)):
        print(f"  seq{i} ({len(seq)} nt), copy planted at {off}")

    glob = align3(*seqs, scheme)
    loc = align3_local(*seqs, scheme)
    semi = align3_semiglobal(*seqs, scheme)
    print(f"\nGlobal SP score     : {glob.score:8.1f} "
          f"(whole sequences, flanks drag it down)")
    print(f"Semi-global SP score: {semi.score:8.1f} "
          f"(free ends, core columns {semi.meta['core']})")
    print(f"Local SP score      : {loc.score:8.1f} "
          f"(best conserved block only)")

    print("\nLocal alignment (the recovered motif):")
    print(loc.pretty())
    print("\nRecovered spans vs planted positions:")
    ok = True
    for i, (span, off, copy) in enumerate(
        zip(loc.meta["spans"], offsets, copies)
    ):
        hit = off <= span[0] and span[1] <= off + len(copy) + 2
        # The local optimum may trim a mutated edge residue; require the
        # span to sit inside (or equal) the planted window.
        overlap = max(0, min(span[1], off + len(copy)) - max(span[0], off))
        frac = overlap / len(copy)
        ok = ok and frac > 0.7
        print(f"  seq{i}: recovered [{span[0]}, {span[1]}) vs planted "
              f"[{off}, {off + len(copy)}) — {frac:.0%} overlap")
    print("\nMotif recovered." if ok else "\nWARNING: weak recovery.")


if __name__ == "__main__":
    main()
