#!/usr/bin/env python3
"""Quickstart: align three sequences optimally and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import align3, align3_score, default_scheme_for
from repro.seqio.alphabet import DNA


def main() -> None:
    # Three homologous DNA fragments with substitutions and indels.
    sa = "GATTACAGATTACACATTAGA"
    sb = "GATCACAGTTACACATAGA"
    sc = "GATTACAGATTGCACTTTAGA"

    # One call: alphabet is guessed (DNA), scheme defaults to 5/-4, gap -6.
    aln = align3(sa, sb, sc)
    print("Optimal three-way alignment (sum-of-pairs score "
          f"{aln.score:g}, engine {aln.meta['engine']}):\n")
    print(aln.pretty())

    # Score-only is O(n^2) memory — usable at much larger lengths.
    score = align3_score(sa, sb, sc)
    assert score == aln.score

    # Explicit control: pick the scheme and the engine.
    scheme = default_scheme_for(DNA).with_gaps(gap=-4.0)
    hirschberg = align3(sa, sb, sc, scheme=scheme, method="hirschberg")
    print(f"\nWith gap -4 (Hirschberg engine): score {hirschberg.score:g}, "
          f"{hirschberg.length} columns, "
          f"{hirschberg.identity():.0%} identical columns")

    # Every alignment can be re-scored and validated independently.
    assert scheme.sp_score(hirschberg.rows) == hirschberg.score
    assert hirschberg.sequences() == (sa, sb, sc)
    print("\nAll checks passed.")


if __name__ == "__main__":
    main()
