#!/usr/bin/env python3
"""Cluster scaling study: predict the paper's speedup figures for *this*
machine's kernel speed.

1. Calibrates the per-cell compute time of the vectorised engine.
2. Measures the real 2-core shared-memory speedup.
3. Simulates the distributed block wavefront on three machine models
   (Fast Ethernet 2007, Gigabit 2007, modern) across processor counts.
4. Sweeps the block size to expose the communication/pipeline tradeoff.

Run:  python examples/cluster_scaling.py
"""

import multiprocessing as mp

from repro import default_scheme_for, mutated_family
from repro.cluster import (
    BlockGrid,
    calibrate_t_cell,
    ethernet_2007,
    gigabit_2007,
    modern_cluster,
    simulate_wavefront,
)
from repro.cluster.metrics import block_sweep, speedup_series
from repro.parallel.shared import score3_shared
from repro.seqio.alphabet import DNA
from repro.util.tables import format_series
from repro.util.timing import repeat_min


def main() -> None:
    t_cell = calibrate_t_cell(n=50, seed=0)
    print(f"Calibrated per-cell time of the vectorised engine: "
          f"{t_cell * 1e9:.1f} ns/cell\n")

    # Measured shared-memory speedup on the real cores of this machine.
    scheme = default_scheme_for(DNA)
    fam = mutated_family(100, seed=1)
    cores = mp.cpu_count()
    t_serial, _ = repeat_min(
        lambda: score3_shared(*fam, scheme, workers=1), repeats=3
    )
    t_par, _ = repeat_min(
        lambda: score3_shared(*fam, scheme, workers=cores), repeats=3, warmup=1
    )
    print(f"Measured on this machine (n=100, {cores} cores): "
          f"serial {t_serial*1e3:.0f} ms, parallel {t_par*1e3:.0f} ms "
          f"-> speedup {t_serial/t_par:.2f}x\n")

    # Simulated cluster speedups with the calibrated kernel speed.
    procs = [1, 2, 4, 8, 16, 32, 64]
    n = 300
    series = {}
    for mk in (ethernet_2007, gigabit_2007, modern_cluster):
        machine = mk(1)
        if mk is not modern_cluster:
            machine = type(machine)(
                procs=1, t_cell=t_cell, alpha=machine.alpha,
                beta=machine.beta, name=machine.name,
            )
        series[machine.name] = [
            round(s, 2)
            for s in speedup_series(n, procs, machine, block=16)
        ]
    print(format_series(
        f"Simulated speedup, n={n}, block 16 (calibrated t_cell)",
        "P", procs, series,
    ))

    # Block-size tradeoff at P=16 on the 2007 network.
    blocks = [4, 8, 16, 32, 64]
    res = block_sweep(n, blocks, ethernet_2007(16, t_cell=t_cell))
    print()
    print(format_series(
        f"Block-size sweep, n={n}, P=16, ethernet-2007",
        "block",
        blocks,
        {
            "speedup": [round(r.speedup, 2) for r in res],
            "messages": [r.messages for r in res],
            "utilisation": [round(r.avg_utilisation, 2) for r in res],
        },
    ))

    # Mapping ablation.
    grid = BlockGrid.for_sequences(n, n, n, 16)
    print("\nMapping ablation (P=16):")
    for mapping in ("pencil", "linear", "slab"):
        r = simulate_wavefront(
            grid, ethernet_2007(16, t_cell=t_cell), mapping=mapping
        )
        print(f"  {mapping:7s} speedup {r.speedup:6.2f}   "
              f"comm {r.comm_volume_bytes/1e6:7.2f} MB")


if __name__ == "__main__":
    main()
